"""Unit tests for AST -> CFG lowering, including the paper's
normalizations (section 4.2) and the function-inlining rules
(section 2.2)."""

import pytest

from repro.errors import SemanticError
from repro.ir.block import CondBr, Fall, Halt, Return, SpawnT
from repro.ir.instr import Op
from repro.ir.lowering import lower_program
from repro.lang.parser import parse
from repro.lang.sema import analyze

from tests.helpers import LISTING1_SHAPE, LISTING3_SHAPE


def lower(src: str):
    return lower_program(analyze(parse(src)))


def ops(block):
    return [i.op for i in block.code]


class TestFigure1:
    """The MIMD state graph of the paper's Listing 1 (Figure 1)."""

    def test_four_states(self):
        cfg = lower(LISTING1_SHAPE)
        assert len(cfg.blocks) == 4

    def test_shapes_match_figure(self):
        cfg = lower(LISTING1_SHAPE)
        entry = cfg.blocks[cfg.entry]
        # State 0 (block A): conditional branch to the two loop bodies.
        assert isinstance(entry.terminator, CondBr)
        t, f = entry.terminator.on_true, entry.terminator.on_false
        # States 2 and 6 (B;C and D;E): self-loop or exit to F.
        for loop_id in (t, f):
            loop = cfg.blocks[loop_id]
            assert isinstance(loop.terminator, CondBr)
            assert loop_id in loop.terminator.successors()
        # Both loops exit to the same F state, which returns.
        exits = set(cfg.blocks[t].terminator.successors()) - {t}
        exits2 = set(cfg.blocks[f].terminator.successors()) - {f}
        assert exits == exits2
        (f_state,) = exits
        assert isinstance(cfg.blocks[f_state].terminator, Return)

    def test_ids_are_dense_from_zero(self):
        cfg = lower(LISTING1_SHAPE)
        assert sorted(cfg.blocks) == [0, 1, 2, 3]
        assert cfg.entry == 0


class TestBarrierLowering:
    def test_barrier_block_is_separate_and_empty(self):
        cfg = lower(LISTING3_SHAPE)
        barriers = [b for b in cfg.blocks.values() if b.is_barrier_wait]
        assert len(barriers) == 1
        assert barriers[0].code == []
        assert isinstance(barriers[0].terminator, Fall)

    def test_listing3_has_five_states(self):
        cfg = lower(LISTING3_SHAPE)
        assert len(cfg.blocks) == 5


class TestLoopNormalization:
    def test_while_becomes_if_plus_dowhile(self):
        # "loops are all of the type that execute the body one or more
        # times ... by replicating some code and inserting an
        # additional if statement"
        cfg = lower("main() { poly int x; while (x) { x = x - 1; } return (x); }")
        entry = cfg.blocks[cfg.entry]
        assert isinstance(entry.terminator, CondBr)
        body = cfg.blocks[entry.terminator.on_true]
        assert isinstance(body.terminator, CondBr)
        assert body.bid in body.terminator.successors()
        # while-loop exit and if-false go to the same place
        assert entry.terminator.on_false in body.terminator.successors()

    def test_dowhile_single_state_loop(self):
        cfg = lower("main() { poly int x; do { x = x - 1; } while (x); return (x); }")
        # do-while needs no guard if: entry flows into the loop body.
        loops = [b for b in cfg.blocks.values()
                 if b.bid in b.terminator.successors()]
        assert len(loops) == 1

    def test_for_normalized_like_while(self):
        cfg = lower("""
main() {
    poly int i; poly int s;
    s = 0;
    for (i = 0; i < procnum; i = i + 1) { s = s + i; }
    return (s);
}
""")
        cfg.verify()
        loops = [b for b in cfg.blocks.values()
                 if b.bid in b.terminator.successors()]
        assert len(loops) == 1

    def test_infinite_for_loop(self):
        cfg = lower("main() { poly int x; for (;;) { x = 1; break; } return (x); }")
        cfg.verify()


class TestExpressions:
    def test_assignment_no_push_pop_waste(self):
        cfg = lower("main() { poly int x; x = 1; return (x); }")
        entry = cfg.blocks[cfg.entry]
        assert Op.DUP not in ops(entry)
        assert Op.POP not in ops(entry)

    def test_assignment_as_value_dups(self):
        cfg = lower("main() { poly int x; poly int y; y = x = 1; return (y); }")
        entry = cfg.blocks[cfg.entry]
        assert Op.DUP in ops(entry)

    def test_compound_assignment_expands(self):
        cfg = lower("main() { poly int x; x += 3; return (x); }")
        entry = cfg.blocks[cfg.entry]
        assert Op.ADD in ops(entry)

    def test_int_division_selects_idiv(self):
        cfg = lower("main() { poly int x; x = 7 / 2; return (x); }")
        assert Op.IDIV in ops(cfg.blocks[cfg.entry])

    def test_float_division_selects_div(self):
        cfg = lower("main() { poly float x; x = 7.0 / 2; return (0); }")
        assert Op.DIV in ops(cfg.blocks[cfg.entry])

    def test_float_to_int_coercion_inserts_trunc(self):
        cfg = lower("main() { poly int x; x = 2.5; return (x); }")
        assert Op.TRUNC in ops(cfg.blocks[cfg.entry])

    def test_ternary_uses_sel(self):
        cfg = lower("main() { poly int x; x = procnum ? 1 : 2; return (x); }")
        assert Op.SEL in ops(cfg.blocks[cfg.entry])

    def test_parallel_read_write(self):
        cfg = lower("""
main() {
    poly int x; poly int y;
    y[[procnum]] = 5;
    x = y[[0]];
    return (x);
}
""")
        entry = cfg.blocks[cfg.entry]
        assert Op.STR in ops(entry)
        assert Op.LDR in ops(entry)

    def test_compound_parallel_assignment_rejected(self):
        with pytest.raises(SemanticError, match="compound"):
            lower("main() { poly int y; y[[0]] += 1; return (0); }")

    def test_mono_store_uses_stm(self):
        cfg = lower("mono int a; main() { a = 3; return (0); }")
        assert Op.STM in ops(cfg.blocks[cfg.entry])

    def test_global_poly_init(self):
        cfg = lower("poly int a = 7; main() { return (a); }")
        entry = cfg.blocks[cfg.entry]
        assert ops(entry)[:2] == [Op.PUSH, Op.ST]


class TestCalls:
    def test_nonrecursive_call_fully_inlined(self):
        cfg = lower("""
int add2(int v) { return (v + 2); }
main() { poly int x; x = add2(procnum); return (x); }
""")
        # No RPUSH/RPOP: non-recursive calls need no dispatch.
        for blk in cfg.blocks.values():
            assert Op.RPUSH not in ops(blk)
            assert Op.RPOP not in ops(blk)

    def test_two_call_sites_get_two_copies(self):
        cfg1 = lower("""
int f(int v) { return (v * 2); }
main() { poly int x; x = f(1); return (x); }
""")
        cfg2 = lower("""
int f(int v) { return (v * 2); }
main() { poly int x; x = f(1); x = f(x); return (x); }
""")
        n1 = sum(len(b.code) for b in cfg1.blocks.values())
        n2 = sum(len(b.code) for b in cfg2.blocks.values())
        assert n2 > n1  # body duplicated, not shared

    def test_recursive_call_uses_selector_stack(self):
        cfg = lower("""
int g(int n) {
    if (n < 2) { return (1); }
    poly int r; r = g(n - 1);
    return (r * n);
}
main() { poly int v; v = g(3); return (v); }
""")
        all_ops = [op for b in cfg.blocks.values() for op in ops(b)]
        assert Op.RPUSH in all_ops
        assert Op.RPOP in all_ops

    def test_recursive_dispatch_has_two_way_blocks_only(self):
        cfg = lower("""
int g(int n) {
    if (n < 2) { return (1); }
    poly int r; r = g(n - 1);
    poly int q; q = g(0);
    return (r + q * 0 + n);
}
main() {
    poly int v; v = g(3);
    poly int w; w = g(2);
    return (v + w);
}
""")
        cfg.verify()  # <=2 exits everywhere, stack depths consistent

    def test_void_function_call(self):
        cfg = lower("""
mono int flag;
void set() { flag = 1; return; }
main() { set(); return (flag); }
""")
        cfg.verify()

    def test_void_function_as_value_rejected(self):
        with pytest.raises(SemanticError, match="void"):
            lower("void f() { return; } main() { poly int x; x = f(); return (0); }")

    def test_call_result_to_mono_rejected(self):
        with pytest.raises(SemanticError, match="mono"):
            lower("mono int a; int f() { return (1); } "
                  "main() { a = f(); return (0); }")


class TestSpawnHalt:
    def test_spawn_terminator(self):
        cfg = lower("""
main() {
    spawn(w);
    return (0);
w:  halt;
}
""")
        spawns = [b for b in cfg.blocks.values()
                  if isinstance(b.terminator, SpawnT)]
        assert len(spawns) == 1
        child = cfg.blocks[spawns[0].terminator.child]
        assert isinstance(child.terminator, Halt)

    def test_halt_ends_block(self):
        cfg = lower("main() { halt; }")
        assert any(isinstance(b.terminator, Halt) for b in cfg.blocks.values())


class TestStructural:
    def test_every_lowered_cfg_verifies(self):
        from tests.helpers import CORPUS

        for name, src in CORPUS:
            cfg = lower(src)
            cfg.verify()
            assert cfg.entry in cfg.blocks, name

    def test_implicit_return_zero(self):
        cfg = lower("main() { poly int x; x = 5; }")
        # Falls off the end: implicit return 0 exists.
        assert any(isinstance(b.terminator, Return) for b in cfg.blocks.values())

    def test_ret_slot_allocated(self):
        cfg = lower("main() { return (3); }")
        assert cfg.ret_slot is not None
        assert cfg.poly_slots[cfg.ret_slot].name == "__ret"
