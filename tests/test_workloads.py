"""The workload library: every kernel converts, runs, and passes the
cross-machine oracle (and its domain-specific postconditions)."""

import numpy as np
import pytest

from repro import ConversionOptions, convert_source, simulate_mimd, simulate_simd
from repro import workloads

from tests.helpers import assert_equivalent


def run(src: str, npes: int = 8, active=None, **opt):
    result = convert_source(src, ConversionOptions(**opt))
    simd = simulate_simd(result, npes=npes, active=active, max_steps=2_000_000)
    mimd = simulate_mimd(result, nprocs=npes, active=active,
                         max_steps=2_000_000)
    assert_equivalent(simd, mimd)
    return result, simd


class TestStandardSet:
    @pytest.mark.parametrize("name", sorted(workloads.STANDARD))
    def test_oracle(self, name):
        src = workloads.STANDARD[name]()
        active = 4 if name == "spawn_waves" else None
        run(src, npes=8, active=active)

    @pytest.mark.parametrize("name", sorted(workloads.STANDARD))
    def test_oracle_compressed(self, name):
        src = workloads.STANDARD[name]()
        active = 4 if name == "spawn_waves" else None
        run(src, npes=8, active=active, compress=True)


class TestPostconditions:
    def test_sort_really_sorts(self):
        _, simd = run(workloads.odd_even_sort(), npes=16)
        values = simd.returns.astype(int).tolist()
        assert values == sorted(values)
        assert sorted(values) == sorted(
            (p * 7 + 3) % 23 for p in range(16)
        )

    def test_reduction_value(self):
        _, simd = run(workloads.tree_reduction(), npes=16)
        assert int(simd.returns[0]) == sum(
            (p * p % 13) + 1 for p in range(16)
        )
        assert len(set(simd.returns.tolist())) == 1

    def test_collatz_depths(self):
        def depth(n):
            d = 0
            while n > 1:
                n = 3 * n + 1 if n % 2 else n // 2
                d += 1
            return d

        _, simd = run(workloads.collatz_depth(10), npes=10)
        expected = [depth(p % 10 + 1) for p in range(10)]
        np.testing.assert_array_equal(simd.returns, expected)

    def test_mandelbrot_divergence(self):
        _, simd = run(workloads.mandelbrot(16), npes=16)
        iters = simd.returns
        assert iters.min() >= 1
        assert iters.max() <= 16
        assert len(set(iters.tolist())) > 2  # genuinely divergent

    def test_spawn_waves_results(self):
        _, simd = run(workloads.spawn_waves(2), npes=16, active=8)
        expected = (np.arange(8) * 10 + 1) ** 2
        np.testing.assert_array_equal(simd.returns[:8], expected)


class TestParameters:
    def test_phase_scaling_is_monotone(self):
        # Pins lazy=False: the count compares whole eager automata.
        counts = []
        for k in (1, 2, 3):
            r = convert_source(workloads.divergent_phases(k),
                               ConversionOptions(max_meta_states=300_000,
                                                 lazy=False))
            counts.append(r.graph.num_states())
        assert counts[0] < counts[1] < counts[2]

    def test_barrier_variant_shrinks(self):
        base = convert_source(workloads.divergent_phases(3),
                              ConversionOptions(max_meta_states=300_000,
                                                lazy=False))
        barr = convert_source(workloads.divergent_phases(3, barrier=True),
                              ConversionOptions(lazy=False))
        assert barr.graph.num_states() < base.graph.num_states()

    def test_divergent_loops_ways(self):
        for ways in (2, 3, 4):
            run(workloads.divergent_loops(ways), npes=ways * 3)

    def test_ways_validated(self):
        with pytest.raises(ValueError):
            workloads.divergent_loops(1)

    def test_imbalance_grows_with_ops(self):
        from repro.analysis.utilization import meta_state_imbalance

        worst = []
        for heavy in (4, 16, 48):
            r = convert_source(workloads.imbalanced_branch(heavy))
            worst.append(min(
                meta_state_imbalance(r.cfg, m) for m in r.graph.states
            ))
        assert worst[0] > worst[1] > worst[2]

    def test_barrier_density(self):
        for n in (0, 2, 5):
            src = workloads.barrier_phases(n)
            r, _ = run(src, npes=6)
            assert len(r.graph.barrier_ids) == n
