"""Differential testing of the ``-O`` levels (the optimizer's oracle).

Every workload in the standard library, compiled at ``-O0``, ``-O1``,
and ``-O2`` (compressed and uncompressed), must produce bit-identical
``SimdResult`` return vectors — the optimizer may only change *cost*,
never *meaning* — and every level must agree with the MIMD reference
machine run on its own optimized CFG (the oracle both machines share).
"""

import numpy as np
import pytest

from repro import (
    ConversionOptions,
    convert_source,
    simulate_mimd,
    simulate_simd,
)
from repro.workloads import all_sources

#: spawn workloads need free PEs, so leave half the machine idle.
NPES, ACTIVE = 8, 4

OPT_LEVELS = (0, 1, 2)


@pytest.mark.parametrize("compress", [False, True],
                         ids=["plain", "compress"])
@pytest.mark.parametrize("name", sorted(all_sources()))
def test_opt_levels_bit_identical(name, compress):
    source = all_sources()[name]
    returns = {}
    for level in OPT_LEVELS:
        opts = ConversionOptions(opt_level=level, compress=compress,
                                 verify_passes=True)
        result = convert_source(source, opts, cache=None)
        simd = simulate_simd(result, npes=NPES, active=ACTIVE)
        mimd = simulate_mimd(result, nprocs=NPES, active=ACTIVE)
        # Oracle agreement at every level: both machines execute the
        # same optimized CFG, so poly memory must match too.
        assert np.array_equal(simd.returns, mimd.returns,
                              equal_nan=True), (name, level, "returns")
        assert np.array_equal(simd.poly, mimd.poly), (name, level, "poly")
        assert np.array_equal(simd.mono, mimd.mono), (name, level, "mono")
        returns[level] = simd.returns
    for level in OPT_LEVELS[1:]:
        assert np.array_equal(returns[0], returns[level],
                              equal_nan=True), (name, level)


@pytest.mark.parametrize("name", sorted(all_sources()))
def test_analyze_is_a_pure_observer(name):
    """Differential guard for the analyzer suite: compiling with
    ``--analyze`` on must produce a bit-identical artifact to the same
    compile with it off — analyzers read every pipeline product but may
    never influence one."""
    source = all_sources()[name]
    plain = convert_source(source, ConversionOptions(), cache=None)
    linted = convert_source(source, ConversionOptions(analyze=True),
                            cache=None)
    assert plain.mpl_text() == linted.mpl_text(), name
    assert plain.graph.states == linted.graph.states, name
    a = simulate_simd(plain, npes=NPES, active=ACTIVE)
    b = simulate_simd(linted, npes=NPES, active=ACTIVE)
    assert np.array_equal(a.returns, b.returns, equal_nan=True), name
    assert np.array_equal(a.poly, b.poly), name
    assert np.array_equal(a.mono, b.mono), name
