"""Unit tests for the two-level optimizer (:mod:`repro.opt`)."""

import pytest

from repro import ConversionOptions, convert_source, simulate_simd
from repro.core.convert import ConvertOptions
from repro.core.metastate import MetaStateGraph
from repro.errors import ConversionError
from repro.ir.instr import Op
from repro.ir.lowering import lower_program
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.opt import (
    CfgContext,
    Pass,
    PassManager,
    StraightenedGraph,
    cfg_pass_list,
    meta_pass_list,
    run_cfg_passes,
    run_meta_passes,
    straightened_for_level,
)

from tests.helpers import LISTING1_RUNNABLE


def fs(*xs):
    return frozenset(xs)


def raw_cfg(src: str):
    return lower_program(analyze(parse(src)), normalize=False)


def opt_cfg(src: str, level: int):
    cfg, records, totals = run_cfg_passes(
        raw_cfg(src), ConversionOptions(opt_level=level, verify_passes=True))
    return cfg, totals


def ops_of(cfg) -> list:
    return [i.op for blk in cfg.blocks.values() for i in blk.code]


def returns_at(src: str, level: int, npes: int = 8):
    r = convert_source(src, ConversionOptions(opt_level=level,
                                              verify_passes=True))
    return simulate_simd(r, npes=npes).returns


# ----------------------------------------------------------------------
# the framework
# ----------------------------------------------------------------------
class TestPassManager:
    def test_records_and_totals(self):
        calls = []
        pm = PassManager([
            Pass("a", lambda ctx: calls.append("a") or {"n": 2}),
            Pass("b", lambda ctx: calls.append("b") or {"n": 3, "m": 1}),
        ])
        records, totals = pm.run(CfgContext(cfg=None))
        assert calls == ["a", "b"]
        assert [r.name for r in records] == ["a", "b"]
        assert all(r.seconds >= 0 for r in records)
        assert records[0].counters == {"n": 2}
        assert totals == {"n": 5, "m": 1}

    def test_verify_passes_catches_broken_pass(self):
        cfg = raw_cfg(LISTING1_RUNNABLE)

        def breaker(ctx):
            # Dangling terminator target: the verifier must object.
            from repro.ir.block import Fall

            next(iter(ctx.cfg.blocks.values())).terminator = Fall(10_000)

        silent = PassManager([Pass("break", breaker)], verify_passes=False)
        silent.run(CfgContext(cfg=cfg))   # not verified: no error

        cfg = raw_cfg(LISTING1_RUNNABLE)
        checked = PassManager([Pass("break", breaker)], verify_passes=True)
        with pytest.raises(ConversionError):
            checked.run(CfgContext(cfg=cfg))

    def test_pass_lists_per_level(self):
        assert [p.name for p in cfg_pass_list(0)] == [
            "unreachable", "renumber"]
        assert [p.name for p in cfg_pass_list(1)] == [
            "unreachable", "remove-empty", "straighten", "renumber"]
        assert [p.name for p in cfg_pass_list(2)] == [
            "unreachable", "remove-empty", "straighten", "fold", "dce",
            "dead-slots", "renumber"]
        assert [p.name for p in meta_pass_list(0)] == ["layout"]
        assert [p.name for p in meta_pass_list(1)] == ["prune", "straighten"]
        assert [p.name for p in meta_pass_list(2)] == [
            "prune", "dead-meta-prune", "uniform-branch", "straighten"]

    def test_o1_matches_inline_normalization(self):
        """-O1 must reproduce what lowering's normalize=True produces —
        the seed behavior."""
        inline = lower_program(analyze(parse(LISTING1_RUNNABLE)))
        staged, _ = opt_cfg(LISTING1_RUNNABLE, 1)
        assert str(inline) == str(staged)


# ----------------------------------------------------------------------
# CFG passes (-O2 block-body work)
# ----------------------------------------------------------------------
class TestFold:
    def test_constant_expression_folds(self):
        src = "main() { poly int x; x = 2 + 3 * 4; return (x); }"
        cfg, totals = opt_cfg(src, 2)
        assert totals["instrs_folded"] >= 2
        ops = ops_of(cfg)
        assert Op.ADD not in ops and Op.MUL not in ops

    def test_copy_propagation_forwards_known_store(self):
        src = ("main() { poly int x; poly int y;"
               " x = 5; y = x + procnum; return (y); }")
        cfg, totals = opt_cfg(src, 2)
        assert totals["loads_forwarded"] >= 1
        assert returns_at(src, 0).tolist() == returns_at(src, 2).tolist()

    def test_constant_branch_folds(self):
        src = ("main() { poly int x;"
               " if (1) { x = procnum; } else { x = 0 - procnum; }"
               " return (x); }")
        cfg1, _ = opt_cfg(src, 1)
        cfg2, totals = opt_cfg(src, 2)
        assert totals["branches_folded"] >= 1
        assert len(cfg2.branch_blocks()) < len(cfg1.branch_blocks())
        assert returns_at(src, 1).tolist() == returns_at(src, 2).tolist()

    def test_constant_select_folds(self):
        src = ("main() { poly int x;"
               " x = 1 ? procnum : 3; return (x); }")
        cfg, _ = opt_cfg(src, 2)
        assert Op.SEL not in ops_of(cfg)
        assert returns_at(src, 0).tolist() == returns_at(src, 2).tolist()

    def test_division_by_zero_not_folded(self):
        # Folding 1/0 would turn a runtime MachineError into silence
        # (or a compile-time crash); the division must survive.
        src = "main() { poly int x; x = 1 / 0; return (x); }"
        cfg, _ = opt_cfg(src, 2)
        assert Op.IDIV in ops_of(cfg)

    def test_constant_array_index_simplifies(self):
        src = ("main() { poly int a[4]; poly int i;"
               " i = procnum % 4; a[i] = i; a[2] = 7;"
               " return (a[i] + a[2]); }")
        cfg, totals = opt_cfg(src, 2)
        # a[2] accesses become direct LD/ST; a[i] stays indexed.
        assert totals["instrs_folded"] >= 2
        ops = ops_of(cfg)
        assert Op.LDI in ops and Op.STI in ops   # the dynamic accesses
        assert returns_at(src, 0).tolist() == returns_at(src, 2).tolist()

    def test_mono_slots_never_tracked(self):
        # Mono memory is shared: a CSI-interleaved block could store to
        # it mid-block, so loads must not be forwarded. (Only globals
        # can be mono — locals live in per-PE poly frames.)
        src = ("mono int m = 0;\n"
               "main() { poly int x;"
               " m = 5; x = m + procnum; return (x); }")
        cfg, _ = opt_cfg(src, 2)
        assert Op.LDM in ops_of(cfg)

    def test_remote_store_disables_tracking(self):
        src = ("main() { poly int x; poly int y;"
               " x = 5; y[[(procnum + 1) % nproc]] = 9; "
               " y = x; return (y + x); }")
        cfg, totals = opt_cfg(src, 2)
        assert totals.get("loads_forwarded", 0) == 0


class TestDce:
    def test_overwritten_store_killed(self):
        src = ("main() { poly int x;"
               " x = procnum; x = procnum + 1; return (x); }")
        cfg, totals = opt_cfg(src, 2)
        assert totals["stores_killed"] >= 1
        assert returns_at(src, 0).tolist() == returns_at(src, 2).tolist()

    def test_remote_read_slot_kept(self):
        # x is read remotely (x@(...)) somewhere in the program: the
        # intermediate store could be observed between the two writes.
        src = ("main() { poly int x; poly int y;"
               " x = procnum; x = procnum + 1;"
               " y = x[[(procnum + 1) % nproc]]; return (y); }")
        cfg, totals = opt_cfg(src, 2)
        assert totals.get("stores_killed", 0) == 0


class TestDeadSlots:
    def test_unused_poly_slot_removed(self):
        src = ("main() { poly int unused; poly int x;"
               " unused = 42; x = procnum; return (x); }")
        cfg1, _ = opt_cfg(src, 1)
        cfg2, totals = opt_cfg(src, 2)
        assert totals["slots_removed"] >= 1
        assert len(cfg2.poly_slots) < len(cfg1.poly_slots)
        assert returns_at(src, 0).tolist() == returns_at(src, 2).tolist()

    def test_unused_mono_slot_removed(self):
        src = ("mono int m = 0;\n"
               "main() { poly int x;"
               " m = 7; x = procnum; return (x); }")
        cfg, totals = opt_cfg(src, 2)
        assert totals["slots_removed"] >= 1
        assert len(cfg.mono_slots) == 0
        assert returns_at(src, 0).tolist() == returns_at(src, 2).tolist()

    def test_partially_read_array_kept_whole(self):
        src = ("main() { poly int a[4];"
               " a[procnum % 4] = procnum; return (a[0]); }")
        cfg, totals = opt_cfg(src, 2)
        assert totals["slots_removed"] == 0
        assert len(cfg.poly_slots) == 4 + 1   # the array + __ret

    def test_ret_slot_remapped(self):
        src = ("main() { poly int unused; poly int x;"
               " unused = 1; x = procnum; return (x); }")
        cfg, _ = opt_cfg(src, 2)
        assert cfg.ret_slot is not None
        assert cfg.ret_slot < len(cfg.poly_slots)
        assert returns_at(src, 2).tolist() == list(range(8))


# ----------------------------------------------------------------------
# meta-graph passes
# ----------------------------------------------------------------------
def small_graph() -> MetaStateGraph:
    """{0} -> {1} -> {2} -> {2} (self loop), {1} also -> {2,3}."""
    g = MetaStateGraph(start=fs(0))
    g.states = {fs(0), fs(1), fs(2), fs(2, 3)}
    g.table = {
        fs(0): {fs(1): fs(1)},
        fs(1): {fs(2): fs(2), fs(2, 3): fs(2, 3)},
        fs(2): {fs(2): fs(2)},
        fs(2, 3): {},
    }
    g.can_exit = {fs(2, 3)}
    g.parked_possible = {m: frozenset() for m in g.states}
    return g


class TestMetaPasses:
    def test_prune_drops_unreachable_state(self):
        g = small_graph()
        g.states.add(fs(9))
        g.table[fs(9)] = {fs(2): fs(2)}
        straightened, records, totals = run_meta_passes(
            g, ConversionOptions(opt_level=1, verify_passes=True))
        assert totals["states_pruned"] == 1
        assert fs(9) not in g.states
        assert [r.name for r in records] == ["prune", "straighten"]
        straightened.verify()

    def test_trivial_layout_is_one_chain_per_state(self):
        sg = straightened_for_level(small_graph(), 0)
        assert all(len(c) == 1 for c in sg.chains)
        assert sg.chain_count() == 4
        assert sg.merged_states() == 0
        sg.verify()

    def test_straightened_layout_merges(self):
        sg = straightened_for_level(small_graph(), 1)
        assert sg.chain_count() < 4
        assert sg.merged_states() >= 1
        sg.verify()


class TestStraighteningEdgeCases:
    """Edge cases previously only exercised implicitly."""

    def test_self_loop_state_never_merged(self):
        sg = StraightenedGraph.from_graph(small_graph())
        # {2} has a self-loop: it must head its own chain.
        assert (fs(2),) in sg.chains
        sg.verify()

    def test_hand_broken_self_loop_chain_rejected(self):
        g = small_graph()
        broken = StraightenedGraph(graph=g, chains=(
            (fs(0),), (fs(1), fs(2)), (fs(2, 3),)))
        # {2} has predecessors {1} and {2} (itself): not an interior.
        with pytest.raises(ConversionError):
            broken.verify()

    def test_start_never_becomes_interior(self):
        g = MetaStateGraph(start=fs(0))
        g.states = {fs(0), fs(1)}
        g.table = {fs(0): {fs(1): fs(1)}, fs(1): {fs(0): fs(0)}}
        g.parked_possible = {m: frozenset() for m in g.states}
        sg = StraightenedGraph.from_graph(g)
        assert sg.chains == ((fs(0), fs(1)),)
        sg.verify()
        broken = StraightenedGraph(graph=g, chains=((fs(1), fs(0)),))
        with pytest.raises(ConversionError, match="start"):
            broken.verify()

    def test_dispatched_state_never_becomes_interior(self):
        # {0} branches to both {1} and {2}; {1} falls into {2}: {2} has
        # two predecessors, so a chain absorbing it is invalid.
        g = MetaStateGraph(start=fs(0))
        g.states = {fs(0), fs(1), fs(2)}
        g.table = {
            fs(0): {fs(1): fs(1), fs(2): fs(2)},
            fs(1): {fs(2): fs(2)},
            fs(2): {},
        }
        g.parked_possible = {m: frozenset() for m in g.states}
        sg = StraightenedGraph.from_graph(g)
        assert all(len(c) == 1 for c in sg.chains)
        broken = StraightenedGraph(graph=g, chains=(
            (fs(0),), (fs(1), fs(2))))
        with pytest.raises(ConversionError):
            broken.verify()

    def test_partition_violations_rejected(self):
        g = small_graph()
        missing = StraightenedGraph(graph=g, chains=((fs(0),), (fs(1),)))
        with pytest.raises(ConversionError, match="partition"):
            missing.verify()
        duplicated = StraightenedGraph(graph=g, chains=(
            (fs(0),), (fs(0),), (fs(1),), (fs(2),), (fs(2, 3),)))
        with pytest.raises(ConversionError, match="two chains"):
            duplicated.verify()

    def test_verify_program_rejects_hand_broken_layout(self):
        """_verify_program's interior-segment check must reject a layout
        that straightens a dispatch-targeted state away."""
        from repro.codegen.emit import encode_program

        r = convert_source(LISTING1_RUNNABLE, ConversionOptions(opt_level=1))
        g = r.graph
        preds = g.predecessors()
        pair = next(
            (a, b)
            for a in sorted(g.states, key=lambda s: sorted(s))
            for b in sorted(g.successors(a), key=lambda s: sorted(s))
            if b != a and (len(g.successors(a)) > 1 or len(preds[b]) > 1)
        )
        chains = [(m,) for m in sorted(g.states, key=lambda s: sorted(s))
                  if m not in pair]
        chains.append(pair)
        broken = StraightenedGraph(graph=g, chains=tuple(chains))
        with pytest.raises(ConversionError):
            encode_program(r.cfg, broken)


# ----------------------------------------------------------------------
# MetaStateGraph derived-structure caches
# ----------------------------------------------------------------------
class TestGraphCaches:
    def test_arcs_and_predecessors_cached(self):
        g = small_graph()
        assert g.arcs() is g.arcs()
        assert g.predecessors() is g.predecessors()
        assert g.num_arcs() == len(g.arcs())

    def test_invalidate_caches_recomputes(self):
        g = small_graph()
        before = g.arcs()
        g.invalidate_caches()
        after = g.arcs()
        assert after is not before
        assert after == before

    def test_prune_invalidates(self):
        g = small_graph()
        g.states.add(fs(9))
        g.table[fs(9)] = {fs(2): fs(2)}
        n_before = g.num_arcs()
        run_meta_passes(g, ConversionOptions(opt_level=1))
        assert g.num_arcs() == n_before - 1
        assert all(fs(9) not in arc for arc in g.arcs())


# ----------------------------------------------------------------------
# options plumbing
# ----------------------------------------------------------------------
class TestOptionsDedup:
    def test_convert_options_view(self):
        assert ConversionOptions(opt_level=1).convert_options() == \
            ConvertOptions()
        custom = ConversionOptions(compress=True, max_meta_states=77,
                                   max_parked=3, opt_level=1)
        assert custom.convert_options() == ConvertOptions(
            compress=True, max_meta_states=77, max_parked=3)

    def test_defaults_single_source(self):
        base = ConvertOptions()
        opts = ConversionOptions(opt_level=1)
        assert opts.compress == base.compress
        assert opts.max_meta_states == base.max_meta_states
        assert opts.max_parked == base.max_parked


class TestOptLevelEnv:
    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_OPT_LEVEL", "0")
        assert ConversionOptions().opt_level == 0
        monkeypatch.setenv("REPRO_OPT_LEVEL", "2")
        assert ConversionOptions().opt_level == 2

    def test_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_OPT_LEVEL", "fast")
        assert ConversionOptions().opt_level == 1
        monkeypatch.setenv("REPRO_OPT_LEVEL", "9")
        assert ConversionOptions().opt_level == 2

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OPT_LEVEL", "0")
        assert ConversionOptions(opt_level=2).opt_level == 2

    def test_opt_level_changes_cache_key(self, monkeypatch):
        from repro.stages.cache import compile_key

        monkeypatch.delenv("REPRO_OPT_LEVEL", raising=False)
        keys = {compile_key(LISTING1_RUNNABLE,
                            ConversionOptions(opt_level=lvl))
                for lvl in (0, 1, 2)}
        assert len(keys) == 3


# ----------------------------------------------------------------------
# end-to-end visualization hook
# ----------------------------------------------------------------------
class TestDotRendering:
    def test_before_after_dot(self):
        from repro.viz.dot import meta_graph_to_dot, straightened_to_dot

        r = convert_source(LISTING1_RUNNABLE, ConversionOptions(opt_level=1))
        before = meta_graph_to_dot(r.graph)
        after = straightened_to_dot(straightened_for_level(r.graph, 1))
        assert before.startswith("digraph meta")
        assert after.startswith("digraph straightened")
        # Straightening only merges: never more nodes than states.
        assert after.count("[label=") <= before.count("[label=")
