"""Arrays: fixed-size poly/mono arrays with indexed access — the part
of "most of the basic C constructs" beyond scalars."""

import numpy as np
import pytest

from repro import ConversionOptions, convert_source
from repro.errors import MachineError, ParseError, SemanticError
from repro.ir.instr import Op
from repro.ir.lowering import lower_program
from repro.lang.parser import parse
from repro.lang.sema import analyze

from tests.helpers import assert_equivalent, run_all_machines


def lower(src):
    return lower_program(analyze(parse(src)))


class TestFrontEnd:
    def test_declaration_parses(self):
        prog = parse("poly int a[8]; main() { return (0); }")
        assert prog.globals[0].size == 8

    def test_local_array(self):
        prog = parse("main() { poly float v[3]; return (0); }")
        assert prog.function("main").body.body[0].size == 3

    def test_zero_size_rejected(self):
        with pytest.raises(ParseError, match="positive"):
            parse("main() { poly int a[0]; return (0); }")

    def test_non_literal_size_rejected(self):
        with pytest.raises(ParseError):
            parse("main() { poly int a[n]; return (0); }")

    def test_index_expression(self):
        prog = parse("main() { poly int a[4]; a[2] = a[1] + 1; return (0); }")
        analyze(prog)

    def test_array_without_subscript_rejected(self):
        with pytest.raises(SemanticError, match="subscript"):
            analyze(parse("main() { poly int a[4]; return (a); }"))

    def test_subscript_of_scalar_rejected(self):
        with pytest.raises(SemanticError, match="not an array"):
            analyze(parse("main() { poly int x; return (x[0]); }"))

    def test_parallel_subscript_of_array_rejected(self):
        with pytest.raises(SemanticError, match="scalars"):
            analyze(parse("main() { poly int a[4]; return (a[[0]]); }"))

    def test_float_index_rejected(self):
        with pytest.raises(SemanticError, match="int"):
            analyze(parse("main() { poly int a[4]; return (a[1.5]); }"))

    def test_mono_array_poly_index_read_is_poly(self):
        prog = parse("mono int t[4]; main() { poly int x; "
                     "x = t[procnum % 4]; return (x); }")
        analyze(prog)

    def test_mono_array_poly_index_write_rejected(self):
        with pytest.raises(SemanticError, match="mono array"):
            analyze(parse("mono int t[4]; main() { t[procnum % 4] = 1; "
                          "return (0); }"))

    def test_compound_array_assign_as_value_rejected(self):
        with pytest.raises(SemanticError, match="value"):
            lower("main() { poly int a[4]; poly int x; "
                  "x = (a[0] += 1); return (x); }")


class TestLowering:
    def test_array_slots_contiguous(self):
        cfg = lower("main() { poly int a[4]; a[0] = 1; return (0); }")
        names = [s.name for s in cfg.poly_slots]
        base = names.index("main.a[0]")
        assert names[base:base + 4] == [f"main.a[{k}]" for k in range(4)]

    def test_indexed_ops_emitted(self):
        cfg = lower("main() { poly int a[4]; a[1] = 9; return (a[1]); }")
        ops = [i.op for b in cfg.blocks.values() for i in b.code]
        assert Op.STI in ops
        assert Op.LDI in ops

    def test_mono_array_ops(self):
        cfg = lower("mono int t[2]; main() { t[0] = 3; return (t[1]); }")
        ops = [i.op for b in cfg.blocks.values() for i in b.code]
        assert Op.STMI in ops
        assert Op.LDMI in ops

    def test_size_carried_in_arg2(self):
        cfg = lower("main() { poly int a[7]; return (a[0]); }")
        ldis = [i for b in cfg.blocks.values() for i in b.code
                if i.op is Op.LDI]
        assert ldis and all(i.arg2 == 7 for i in ldis)

    def test_compound_uses_swap(self):
        cfg = lower("main() { poly int a[4]; a[1] += 2; return (0); }")
        ops = [i.op for b in cfg.blocks.values() for i in b.code]
        assert Op.SWAP in ops


class TestExecution:
    def test_histogram_oracle(self):
        src = """
mono int lut[4];
main() {
    poly int hist[3];
    poly int i; poly int s;
    lut[0] = 5; lut[1] = 7; lut[2] = 11; lut[3] = 2;
    for (i = 0; i < 6; i += 1) {
        hist[(procnum + i) % 3] += 1;
    }
    s = 0;
    for (i = 0; i < 3; i += 1) {
        s = s + hist[i] * lut[i % 4];
    }
    return (s + lut[procnum % 4]);
}
"""
        _, simd, mimd, interp = run_all_machines(src, npes=8)
        assert_equivalent(simd, mimd, interp)

    def test_per_pe_arrays_independent(self):
        src = """
main() {
    poly int a[4];
    poly int i;
    for (i = 0; i < 4; i += 1) { a[i] = procnum * 10 + i; }
    return (a[procnum % 4]);
}
"""
        _, simd, mimd, _ = run_all_machines(src, npes=6)
        assert_equivalent(simd, mimd)
        expected = [p * 10 + (p % 4) for p in range(6)]
        np.testing.assert_array_equal(simd.returns, expected)

    def test_array_oracle_under_compression(self):
        src = """
main() {
    poly int a[3]; poly int i;
    for (i = 0; i < 3; i += 1) { a[i] = i * i; }
    if (procnum % 2) { a[0] += 10; } else { a[2] += 20; }
    return (a[0] + a[1] + a[2]);
}
"""
        _, simd, mimd, _ = run_all_machines(
            src, npes=8, options=ConversionOptions(compress=True)
        )
        assert_equivalent(simd, mimd)

    def test_bubble_sort_local_array(self):
        src = """
main() {
    poly int a[5];
    poly int i; poly int j; poly int t;
    for (i = 0; i < 5; i += 1) {
        a[i] = (procnum * 13 + i * 7) % 10;
    }
    for (i = 0; i < 4; i += 1) {
        for (j = 0; j < 4 - i; j += 1) {
            if (a[j] > a[j + 1]) {
                t = a[j]; a[j] = a[j + 1]; a[j + 1] = t;
            }
        }
    }
    return (a[0] * 10000 + a[1] * 1000 + a[2] * 100 + a[3] * 10 + a[4]);
}
"""
        _, simd, mimd, _ = run_all_machines(src, npes=4)
        assert_equivalent(simd, mimd)
        for p in range(4):
            vals = sorted((p * 13 + i * 7) % 10 for i in range(5))
            encoded = int("".join(str(v) for v in vals))
            assert int(simd.returns[p]) == encoded

    def test_out_of_bounds_read_raises(self):
        src = "main() { poly int a[3]; return (a[procnum]); }"
        r = run_all_machines  # noqa: F841 (clarity)
        from repro import simulate_simd, simulate_mimd

        result = convert_source(src)
        with pytest.raises(MachineError, match="range"):
            simulate_simd(result, npes=5)
        with pytest.raises(MachineError, match="range"):
            simulate_mimd(result, nprocs=5)

    def test_out_of_bounds_write_raises(self):
        from repro import simulate_simd

        result = convert_source(
            "main() { poly int a[2]; a[procnum] = 1; return (0); }"
        )
        with pytest.raises(MachineError, match="range"):
            simulate_simd(result, npes=4)

    def test_negative_index_raises(self):
        from repro import simulate_simd

        result = convert_source(
            "main() { poly int a[2]; return (a[0 - 1]); }"
        )
        with pytest.raises(MachineError, match="range"):
            simulate_simd(result, npes=2)
