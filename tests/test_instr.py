"""Unit tests for the instruction set and cost model."""

import pytest

from repro.ir.instr import (
    BINARY_OPS,
    DEFAULT_COSTS,
    UNARY_OPS,
    CostModel,
    Instr,
    Op,
    code_cost,
)


class TestStackEffects:
    def test_every_opcode_has_a_stack_delta(self):
        for op in Op:
            arg = 1 if op is Op.POP else (0 if op in (
                Op.PUSH, Op.LD, Op.ST, Op.LDM, Op.STM, Op.LDR, Op.STR,
                Op.RPUSH,
            ) else None)
            Instr(op, arg).stack_delta()  # must not raise

    def test_binary_delta(self):
        for op in BINARY_OPS:
            assert Instr(op).stack_delta() == -1
            assert Instr(op).pops() == 2

    def test_unary_delta(self):
        for op in UNARY_OPS:
            assert Instr(op).stack_delta() == 0
            assert Instr(op).pops() == 1

    def test_push_pop(self):
        assert Instr(Op.PUSH, 1).stack_delta() == 1
        assert Instr(Op.POP, 3).stack_delta() == -3
        assert Instr(Op.POP, 3).pops() == 3

    def test_sel(self):
        assert Instr(Op.SEL).stack_delta() == -2
        assert Instr(Op.SEL).pops() == 3

    def test_str_pops_two(self):
        assert Instr(Op.STR, 0).stack_delta() == -2

    def test_ldr_is_neutral(self):
        assert Instr(Op.LDR, 0).stack_delta() == 0

    def test_rpop_pushes(self):
        assert Instr(Op.RPOP).stack_delta() == 1
        assert Instr(Op.RPUSH, 5).stack_delta() == 0


class TestRendering:
    def test_no_arg(self):
        assert str(Instr(Op.ADD)) == "Add"

    def test_int_arg(self):
        assert str(Instr(Op.PUSH, 4)) == "Push(4)"

    def test_float_arg(self):
        assert str(Instr(Op.PUSH, 1.5)) == "Push(1.5)"

    def test_whole_float_renders_as_int(self):
        assert str(Instr(Op.PUSH, 2.0)) == "Push(2)"


class TestCostModel:
    def test_default_costs_cover_all_opcodes(self):
        for op in Op:
            assert DEFAULT_COSTS.cost(Instr(op, 0)) >= 1

    def test_stm_includes_broadcast(self):
        plain = DEFAULT_COSTS.op_costs[Op.STM]
        assert DEFAULT_COSTS.cost(Instr(Op.STM, 0)) == (
            plain + DEFAULT_COSTS.broadcast_cost
        )

    def test_router_is_expensive(self):
        assert DEFAULT_COSTS.cost(Instr(Op.LDR, 0)) > DEFAULT_COSTS.cost(
            Instr(Op.ADD)
        )

    def test_code_cost_sums(self):
        code = [Instr(Op.PUSH, 1), Instr(Op.PUSH, 2), Instr(Op.ADD)]
        assert code_cost(code) == 1 + 1 + 1

    def test_with_overrides(self):
        c = DEFAULT_COSTS.with_overrides(globalor_cost=99)
        assert c.globalor_cost == 99
        assert c.dispatch_cost == DEFAULT_COSTS.dispatch_cost

    def test_unknown_op_falls_back_to_default(self):
        c = CostModel(op_costs={}, default_op_cost=7)
        assert c.cost(Instr(Op.ADD)) == 7

    def test_instances_are_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.branch_cost = 5  # type: ignore[misc]
