"""Unit tests for the reference MIMD machine (the semantic oracle)."""

import numpy as np
import pytest

from repro import convert_source
from repro.errors import MachineError
from repro.ir.lowering import lower_program
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.mimd.machine import DONE, IDLE, MimdMachine


def lower(src: str):
    return lower_program(analyze(parse(src)))


class TestBasicExecution:
    def test_straight_line(self):
        cfg = lower("main() { poly int x; x = 2 + 3 * 4; return (x); }")
        res = MimdMachine(nprocs=4).run(cfg)
        np.testing.assert_array_equal(res.returns, [14, 14, 14, 14])

    def test_procnum_differs(self):
        cfg = lower("main() { return (procnum * 2); }")
        res = MimdMachine(nprocs=4).run(cfg)
        np.testing.assert_array_equal(res.returns, [0, 2, 4, 6])

    def test_divergent_branching(self):
        cfg = lower("""
main() {
    poly int x;
    if (procnum % 2) { x = 1; } else { x = 100; }
    return (x);
}
""")
        res = MimdMachine(nprocs=4).run(cfg)
        np.testing.assert_array_equal(res.returns, [100, 1, 100, 1])

    def test_loop_iteration_counts_differ(self):
        cfg = lower("""
main() {
    poly int i; poly int s;
    s = 0;
    for (i = 0; i < procnum + 1; i += 1) { s += i; }
    return (s);
}
""")
        res = MimdMachine(nprocs=5).run(cfg)
        np.testing.assert_array_equal(res.returns, [0, 1, 3, 6, 10])

    def test_all_done_status(self):
        cfg = lower("main() { return (0); }")
        res = MimdMachine(nprocs=3).run(cfg)
        assert (res.status == DONE).all()

    def test_inactive_procs_stay_idle(self):
        cfg = lower("main() { return (procnum); }")
        res = MimdMachine(nprocs=4).run(cfg, active=2)
        assert (res.status[2:] == IDLE).all()
        assert np.isnan(res.returns[2:]).all()
        np.testing.assert_array_equal(res.returns[:2], [0, 1])


class TestTiming:
    def test_finish_time_positive(self):
        cfg = lower("main() { poly int x; x = 1; return (x); }")
        res = MimdMachine(nprocs=2).run(cfg)
        assert res.finish_time > 0

    def test_busy_cycles_bounded_by_finish(self):
        cfg = lower("""
main() {
    poly int i; poly int s;
    for (i = 0; i < procnum + 1; i += 1) { s += i; }
    return (s);
}
""")
        res = MimdMachine(nprocs=8).run(cfg)
        assert res.busy_cycles <= res.nprocs * res.finish_time
        assert 0 < res.utilization <= 1

    def test_asymmetric_work_lowers_utilization(self):
        sym = lower("main() { poly int i; for (i=0;i<10;i+=1){;} return (0); }")
        asym = lower("""
main() {
    poly int i;
    if (procnum == 0) { for (i = 0; i < 50; i += 1) { ; } }
    return (0);
}
""")
        u_sym = MimdMachine(nprocs=8).run(sym).utilization
        u_asym = MimdMachine(nprocs=8).run(asym).utilization
        assert u_asym < u_sym

    def test_trace_records_blocks(self):
        cfg = lower("main() { poly int x; if (procnum) { x=1; } else { x=2; } return (x); }")
        res = MimdMachine(nprocs=2, trace=True).run(cfg)
        assert res.trace[0][0][0] == cfg.entry
        assert len(res.trace[1]) >= 2
        # Times are non-decreasing within a processor.
        for pid in (0, 1):
            times = [t for _, t in res.trace[pid]]
            assert times == sorted(times)


class TestBarrier:
    def test_barrier_wait_cycles_accumulate(self):
        cfg = lower("""
main() {
    poly int i;
    if (procnum == 0) { for (i = 0; i < 20; i += 1) { ; } }
    wait;
    return (0);
}
""")
        res = MimdMachine(nprocs=4).run(cfg)
        assert res.barrier_releases == 1
        assert res.barrier_wait_cycles > 0

    def test_balanced_barrier_waits_little(self):
        cfg = lower("main() { poly int x; x = 1; wait; return (x); }")
        res = MimdMachine(nprocs=4).run(cfg)
        assert res.barrier_releases == 1
        assert res.barrier_wait_cycles == 0

    def test_release_charged(self):
        cfg = lower("main() { wait; return (0); }")
        with_cost = MimdMachine(nprocs=2, barrier_release_cost=50).run(cfg)
        without = MimdMachine(nprocs=2, barrier_release_cost=0).run(cfg)
        assert with_cost.finish_time == without.finish_time + 50

    def test_done_proc_does_not_block_barrier(self):
        cfg = lower("""
main() {
    if (procnum == 0) { return (1); }
    wait;
    return (2);
}
""")
        res = MimdMachine(nprocs=3).run(cfg)
        np.testing.assert_array_equal(res.returns, [1, 2, 2])


class TestErrors:
    def test_step_budget(self):
        cfg = lower("main() { poly int x; do { x = 1; } while (x); return (x); }")
        with pytest.raises(MachineError, match="exceeded"):
            MimdMachine(nprocs=1).run(cfg, max_steps=100)

    def test_division_by_zero_surfaces(self):
        cfg = lower("main() { poly int x; x = 1 / (procnum - procnum); return (x); }")
        with pytest.raises(MachineError, match="zero"):
            MimdMachine(nprocs=1).run(cfg)

    def test_bad_active_count(self):
        cfg = lower("main() { return (0); }")
        with pytest.raises(MachineError):
            MimdMachine(nprocs=2).run(cfg, active=0)
        with pytest.raises(MachineError):
            MimdMachine(nprocs=2).run(cfg, active=3)

    def test_zero_procs_rejected(self):
        with pytest.raises(MachineError):
            MimdMachine(nprocs=0)

    def test_recursion_depth_limit(self):
        src = """
int f(int n) { poly int r; r = f(n + 1); return (r); }
main() { poly int v; v = f(0); return (v); }
"""
        cfg = lower(src)
        with pytest.raises(MachineError, match="(recursion|selector|exceeded)"):
            MimdMachine(nprocs=1, max_rstack=16).run(cfg, max_steps=10_000)

    def test_router_out_of_range(self):
        cfg = lower("main() { poly int x; x = x[[nproc]]; return (x); }")
        with pytest.raises(MachineError, match="range"):
            MimdMachine(nprocs=2).run(cfg)


class TestMonoOrdering:
    def test_tie_broken_by_pid_highest_wins(self):
        # All procs store to a mono variable in the same block at time
        # 0; the (time, pid) event order makes the highest pid land last.
        cfg = lower("mono int m; main() { poly int x; x = 1; return (x); }")
        # craft: every proc writes procnum... can't: poly -> mono illegal.
        # Instead: uniform writes are trivially deterministic.
        res = MimdMachine(nprocs=3).run(cfg)
        assert res.mono.shape == (1,)

    def test_router_write_conflict_highest_pid_wins(self):
        cfg = lower("""
main() {
    poly int x;
    x[[0]] = procnum + 1;
    return (x);
}
""")
        res = MimdMachine(nprocs=4).run(cfg)
        x_slot = next(s.index for s in cfg.poly_slots if s.name.endswith(".x"))
        assert res.poly[x_slot, 0] == 4.0
