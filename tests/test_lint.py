"""Tests for the whole-program analyzer suite (``repro.lint``).

Covers the diagnostics engine, the five analyzers against the seeded
``tests/lint_corpus`` programs, cleanliness of the library workloads,
pipeline integration (``--analyze`` stages, reports, ``--Werror``),
the ``repro lint`` CLI, and the <10% analyzer-overhead budget.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import ConversionOptions, convert_source
from repro.__main__ import main
from repro.errors import LintError
from repro.lint import (
    Diagnostic,
    Severity,
    Span,
    lint_source,
    render_text,
)
from repro.lint.diagnostics import filter_diagnostics
from repro.lint.races import co_resident_pairs
from repro.stages import STAGE_NAMES
from repro.stages.cache import CompileCache
from repro.workloads import all_sources

from tests.helpers import LISTING1_RUNNABLE

CORPUS = Path(__file__).parent / "lint_corpus"
CORPUS_FILES = sorted(CORPUS.glob("*.mimdc"))

ANALYZED_STAGES = ("parse", "sema", "lower", "opt-cfg", "analyze",
                   "convert", "opt-meta", "encode", "plan",
                   "analyze-meta", "kernels", "native")


def expected_codes(path: Path) -> list[str]:
    """``// expect: MSC0xx`` annotations (``-info`` suffix allowed)."""
    out = []
    for line in path.read_text().splitlines():
        stripped = line.strip()
        if stripped.startswith("// expect:"):
            out.append(stripped.split(":", 1)[1].strip())
    return out


def reportable(diagnostics):
    """Findings a corpus program is expected to declare.

    MSC031 (unbalanced arms) is an informational cost note that rides
    along with almost any divergent program, so corpus annotations do
    not have to list it.
    """
    out = []
    for d in diagnostics:
        if d.code == "MSC031" and d.severity == Severity.INFO:
            continue
        out.append(f"{d.code}-info" if d.severity == Severity.INFO
                   else d.code)
    return sorted(out)


class TestCorpus:
    def test_corpus_seeded(self):
        assert len(CORPUS_FILES) >= 10
        bad = [p for p in CORPUS_FILES if expected_codes(p)]
        clean = [p for p in CORPUS_FILES if not expected_codes(p)]
        assert len(bad) >= 8 and len(clean) >= 2

    @pytest.mark.parametrize("path", CORPUS_FILES,
                             ids=lambda p: p.stem)
    def test_exactly_expected_codes(self, path):
        result = lint_source(path.read_text(), filename=path.name)
        assert reportable(result.diagnostics) == sorted(
            expected_codes(path)), path.name

    def test_clean_files_fully_clean(self):
        for path in CORPUS_FILES:
            if expected_codes(path):
                continue
            result = lint_source(path.read_text(), filename=path.name)
            assert result.diagnostics == [], path.name

    def test_findings_carry_spans_and_hints(self):
        path = CORPUS / "unused_var.mimdc"
        result = lint_source(path.read_text(), filename=path.name)
        found = [d for d in result.diagnostics if d.code == "MSC040"]
        assert len(found) == 2
        for d in found:
            assert d.span is not None and d.span.line >= 1
            assert d.hint
            assert d.analyzer == "source"

    def test_explosion_bomb_is_error(self):
        path = CORPUS / "explosion_bomb.mimdc"
        result = lint_source(path.read_text(), filename=path.name)
        bombs = [d for d in result.diagnostics if d.code == "MSC030"]
        assert len(bombs) == 1
        assert bombs[0].severity == Severity.ERROR
        assert not result.ok()

    def test_eager_explosion_hints_at_lazy(self):
        path = CORPUS / "explosion_bomb.mimdc"
        result = lint_source(path.read_text(), filename=path.name)
        (bomb,) = [d for d in result.diagnostics if d.code == "MSC030"]
        assert "--lazy" in bomb.hint

    @pytest.mark.parametrize("stem", ["explosion_branch_tree",
                                      "explosion_random_walks"])
    def test_explosion_downgrades_to_warning_under_lazy(self, stem):
        # The same programs that hard-error eagerly only warn when the
        # compile is lazy: only reachable states materialize, so the
        # eager bound is advisory, not fatal.
        path = CORPUS / f"{stem}.mimdc"
        src = path.read_text()
        result = lint_source(src, ConversionOptions(lazy=True),
                             filename=path.name)
        bombs = [d for d in result.diagnostics if d.code == "MSC030"]
        assert len(bombs) == 1
        assert bombs[0].severity == Severity.WARNING
        assert "--max-resident-meta" in bombs[0].hint
        assert result.ok()
        # Lazy lint continues into the meta phase incrementally: the
        # conversion engine is built and the frontier verifier drives it
        # under the state budget.
        assert "convert" in result.stages_run


class TestWorkloadsClean:
    @pytest.mark.parametrize("name", sorted(all_sources()))
    def test_no_warnings_on_library_workloads(self, name):
        result = lint_source(all_sources()[name], filename=name)
        loud = [d for d in result.diagnostics
                if Severity.rank(d.severity) >=
                Severity.rank(Severity.WARNING)]
        assert loud == [], name
        assert result.ok(werror=True)

    def test_spawn_waves_no_race_false_positive(self):
        # Regression: the converter's parked-set union used to yield a
        # spurious meta state pairing blocks parked at *sequential*
        # barriers; the path-sensitive co-residence refinement prunes it.
        result = lint_source(all_sources()["spawn_waves"],
                             filename="spawn_waves")
        assert [d for d in result.diagnostics
                if d.code.startswith("MSC02")] == []


class TestCoResidence:
    def test_divergent_arms_are_co_resident(self):
        r = convert_source(CORPUS.joinpath("slot_race.mimdc").read_text(),
                           cache=None)
        pairs = co_resident_pairs(r.cfg)
        assert pairs is not None
        # Some pair of distinct blocks must be realizable (the arms).
        assert any(len(p) == 2 for p in pairs)

    def test_straight_line_barriers_have_no_pairs(self):
        # No divergence: the lockstep walk never holds two active
        # blocks at once, so no block pair is ever co-resident.
        src = ("main() { poly int x; x = procnum; wait;\n"
               "         x = x + 1; wait; return (x); }\n")
        r = convert_source(src, cache=None)
        pairs = co_resident_pairs(r.cfg)
        assert pairs == set()


class TestDiagnosticsEngine:
    def test_severity_order(self):
        assert Severity.rank(Severity.INFO) < \
            Severity.rank(Severity.WARNING) < \
            Severity.rank(Severity.ERROR)

    def test_json_round_trip(self):
        d = Diagnostic(code="MSC010", message="m", severity="warning",
                       span=Span(3, 7), hint="add a wait",
                       analyzer="barrier")
        assert Diagnostic.from_json(d.to_json()) == d
        bare = Diagnostic(code="MSC030", message="boom",
                          severity="error")
        assert Diagnostic.from_json(bare.to_json()) == bare

    def test_filter_select_prefix(self):
        ds = [Diagnostic("MSC010", "a"), Diagnostic("MSC040", "b"),
              Diagnostic("MSC041", "c")]
        assert [d.code for d in
                filter_diagnostics(ds, select=("MSC04",))] == \
            ["MSC040", "MSC041"]
        assert [d.code for d in
                filter_diagnostics(ds, ignore=("MSC04",))] == ["MSC010"]
        assert [d.code for d in
                filter_diagnostics(ds, select=("MSC0",),
                                   ignore=("MSC010",))] == \
            ["MSC040", "MSC041"]

    def test_render_text_caret(self):
        src = "main() {\n    poly int x;\n    return (0);\n}\n"
        d = Diagnostic("MSC040", "variable 'x' is never read",
                       span=Span(2, 14), hint="remove it")
        text = render_text([d], source=src, filename="t.mimdc")
        assert "t.mimdc:2:14: warning: MSC040" in text
        assert "^" in text
        assert "remove it" in text

    def test_lint_source_select_ignore(self):
        src = CORPUS.joinpath("unused_var.mimdc").read_text()
        only = lint_source(src, select=("MSC040",))
        assert {d.code for d in only.diagnostics} == {"MSC040"}
        none = lint_source(src, ignore=("MSC0",))
        assert none.diagnostics == []


class TestPipelineIntegration:
    def test_default_stage_list_unchanged(self):
        r = convert_source(LISTING1_RUNNABLE)
        assert r.report.stage_names() == list(STAGE_NAMES)

    def test_analyze_splices_two_stages(self):
        r = convert_source(LISTING1_RUNNABLE,
                           ConversionOptions(analyze=True))
        assert r.report.stage_names() == list(ANALYZED_STAGES)
        analyze = r.report.stage("analyze")
        assert [s.name for s in analyze.subrecords] == \
            ["verify-cfg", "absint", "barrier", "explosion", "source"]
        meta = r.report.stage("analyze-meta")
        assert [s.name for s in meta.subrecords] == \
            ["frontier", "certify", "verify-meta", "races"]
        assert all(s.seconds >= 0 for s in analyze.subrecords)

    def test_report_carries_diagnostics(self):
        src = CORPUS.joinpath("unused_var.mimdc").read_text()
        r = convert_source(src, ConversionOptions(analyze=True))
        codes = [d.code for d in r.report.diagnostics]
        assert codes.count("MSC040") == 2
        data = r.report.to_json()
        assert [d["code"] for d in data["diagnostics"]] == codes

    def test_analyzer_is_pure_observer(self):
        r_plain = convert_source(LISTING1_RUNNABLE, cache=None)
        r_lint = convert_source(LISTING1_RUNNABLE,
                                ConversionOptions(analyze=True),
                                cache=None)
        assert r_plain.mpl_text() == r_lint.mpl_text()

    def test_werror_raises_lint_error(self):
        src = CORPUS.joinpath("barrier_deadlock.mimdc").read_text()
        with pytest.raises(LintError) as exc:
            convert_source(src, ConversionOptions(analyze=True,
                                                  werror=True))
        assert "Werror" in str(exc.value)
        assert any(d.code == "MSC010" for d in exc.value.diagnostics)

    def test_werror_failure_not_cached(self, tmp_path):
        src = CORPUS.joinpath("barrier_deadlock.mimdc").read_text()
        cache = CompileCache(root=tmp_path)
        with pytest.raises(LintError):
            convert_source(src, ConversionOptions(analyze=True,
                                                  werror=True),
                           cache=cache)
        assert cache.stores == 0

    def test_explosion_error_aborts_before_convert(self):
        src = CORPUS.joinpath("explosion_bomb.mimdc").read_text()
        # 3^13 meta states would blow the conversion cap; MSC030 must
        # fire first, from the analyze stage, even without --Werror.
        with pytest.raises(LintError) as exc:
            convert_source(src, ConversionOptions(analyze=True))
        assert "MSC030" in str(exc.value)

    def test_warm_hit_reruns_analyzers(self, tmp_path):
        src = CORPUS.joinpath("unused_var.mimdc").read_text()
        cache = CompileCache(root=tmp_path)
        opts = ConversionOptions(analyze=True)
        r1 = convert_source(src, opts, cache=cache)
        r2 = convert_source(src, opts, cache=cache)
        assert (r1.report.cache, r2.report.cache) == ("miss", "hit")
        assert r2.report.stage_names()[-2:] == ["analyze",
                                                "analyze-meta"]
        assert [d.to_json() for d in r2.report.diagnostics] == \
            [d.to_json() for d in r1.report.diagnostics]

    def test_warm_hit_still_enforces_werror(self, tmp_path):
        src = CORPUS.joinpath("barrier_deadlock.mimdc").read_text()
        cache = CompileCache(root=tmp_path)
        convert_source(src, ConversionOptions(analyze=True),
                       cache=cache)
        with pytest.raises(LintError):
            convert_source(src, ConversionOptions(analyze=True,
                                                  werror=True),
                           cache=cache)


class TestLintCli:
    @pytest.fixture
    def bad_file(self):
        return str(CORPUS / "barrier_deadlock.mimdc")

    @pytest.fixture
    def clean_file(self):
        return str(CORPUS / "clean_barrier.mimdc")

    def test_clean_exits_zero(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_warning_exits_zero_without_werror(self, bad_file, capsys):
        assert main(["lint", bad_file]) == 0
        out = capsys.readouterr().out
        assert "MSC010" in out and "warning" in out

    def test_warning_exits_one_with_werror(self, bad_file, capsys):
        assert main(["lint", bad_file, "--Werror"]) == 1
        assert "MSC010" in capsys.readouterr().out

    def test_error_exits_one_even_without_werror(self, capsys):
        assert main(["lint",
                     str(CORPUS / "explosion_bomb.mimdc")]) == 1
        assert "MSC030" in capsys.readouterr().out

    def test_json_format(self, bad_file, capsys):
        assert main(["lint", bad_file, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert any(d["code"] == "MSC010" for d in data["diagnostics"])

    def test_select_filter(self, bad_file, capsys):
        assert main(["lint", bad_file, "--select", "MSC040"]) == 0
        assert "MSC010" not in capsys.readouterr().out

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.mimdc"
        path.write_text("main() { poly int x\n")
        assert main(["lint", str(path)]) == 2

    def test_compile_analyze_werror_exits_two(self, bad_file, capsys):
        assert main(["compile", bad_file, "--analyze", "--no-cache",
                     "--Werror"]) == 2
        err = capsys.readouterr().err
        assert "MSC010" in err and "Werror" in err


class TestOverheadBudget:
    def test_analyzers_under_ten_percent_cold(self, tmp_path):
        """Acceptance: analyze + analyze-meta < 10% of a cold
        ``--no-cache`` CLI compile of odd_even_sort (best of 3)."""
        src = tmp_path / "odd_even_sort.mimdc"
        src.write_text(all_sources()["odd_even_sort"])
        env = dict(os.environ)
        root = Path(__file__).resolve().parents[1]
        env["PYTHONPATH"] = str(root / "src")
        best = 1.0
        for attempt in range(3):
            report = tmp_path / f"report{attempt}.json"
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "compile", str(src),
                 "--analyze", "--no-cache",
                 "--report-json", str(report)],
                env=env, capture_output=True, text=True)
            assert proc.returncode == 0, proc.stderr
            data = json.loads(report.read_text())
            lint_s = sum(s["seconds"] for s in data["stages"]
                         if s["name"] in ("analyze", "analyze-meta"))
            total_s = sum(s["seconds"] for s in data["stages"])
            best = min(best, lint_s / total_s)
        assert best < 0.10, f"analyzer overhead {best:.1%}"
