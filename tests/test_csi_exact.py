"""Exact CSI (A* weighted-SCS) and certification of the heuristic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csi.dag import ThreadCode
from repro.csi.exact import csi_schedule_exact
from repro.csi.schedule import csi_schedule, pairwise_schedule, verify_schedule
from repro.errors import ConversionError
from repro.ir.instr import DEFAULT_COSTS, Instr, Op

OPS = [Instr(Op.PUSH, 1), Instr(Op.PUSH, 2), Instr(Op.ST, 0),
       Instr(Op.LD, 0), Instr(Op.ADD), Instr(Op.MUL)]


def t(tid, *idx):
    return ThreadCode.of(tid, [OPS[i] for i in idx])


class TestExactBasics:
    def test_identical_threads(self):
        s = csi_schedule_exact([t(1, 0, 2, 3), t(2, 0, 2, 3)])
        assert s.cost == sum(DEFAULT_COSTS.cost(OPS[i]) for i in (0, 2, 3))
        verify_schedule([t(1, 0, 2, 3), t(2, 0, 2, 3)], s)

    def test_disjoint_threads(self):
        threads = [t(1, 0, 4), t(2, 1, 5)]
        s = csi_schedule_exact(threads)
        verify_schedule(threads, s)
        assert s.cost == sum(DEFAULT_COSTS.cost(OPS[i]) for i in (0, 4, 1, 5))

    def test_single_thread(self):
        threads = [t(1, 0, 1, 2)]
        s = csi_schedule_exact(threads)
        assert [e.instr for e in s.entries] == list(threads[0].code)

    def test_empty(self):
        assert csi_schedule_exact([]).entries == []

    def test_matches_pairwise_dp_for_two_threads(self):
        # The pairwise DP is optimal for two threads; exact must agree.
        threads = [t(1, 0, 2, 3, 4), t(2, 1, 2, 3, 5)]
        assert csi_schedule_exact(threads).cost == pairwise_schedule(
            threads
        ).cost

    def test_budget_enforced(self):
        threads = [
            ThreadCode.of(k, [OPS[(i * (k + 2)) % 6] for i in range(14)])
            for k in range(5)
        ]
        with pytest.raises(ConversionError, match="exceeded"):
            csi_schedule_exact(threads, max_states=10)


class TestHeuristicCertification:
    @given(
        codes=st.lists(
            st.lists(st.integers(min_value=0, max_value=5),
                     min_size=1, max_size=6),
            min_size=2, max_size=3,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_heuristic_never_beats_exact_and_stays_close(self, codes):
        threads = [
            ThreadCode.of(tid, [OPS[i] for i in code])
            for tid, code in enumerate(codes)
        ]
        exact = csi_schedule_exact(threads)
        heur = csi_schedule(threads)
        verify_schedule(threads, exact)
        assert exact.cost <= heur.cost          # exact is optimal
        assert heur.cost <= exact.cost * 1.5    # heuristic stays close
        assert exact.cost >= heur.lower_bound   # bound is admissible

    @given(
        a=st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                   max_size=8),
        b=st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                   max_size=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_two_thread_heuristic_is_optimal(self, a, b):
        # With two threads the pairwise DP runs inside csi_schedule, so
        # the heuristic result must be exactly optimal.
        threads = [
            ThreadCode.of(1, [OPS[i] for i in a]),
            ThreadCode.of(2, [OPS[i] for i in b]),
        ]
        assert csi_schedule(threads).cost == csi_schedule_exact(threads).cost


class TestExactOnRealMetaStates:
    def test_real_meta_states_scheduled_optimally(self):
        from repro import convert_source

        src = """
main() {
    poly int x; poly int y;
    x = procnum % 3;
    if (x) { do { y = y + x; x = x - 1; } while (x); }
    else   { do { y = y + 2; x = x + 1; } while (x - 3); }
    return (y);
}
"""
        result = convert_source(src)
        checked = 0
        for m in result.graph.states:
            if len(m) < 2:
                continue
            threads = [
                ThreadCode.of(b, result.cfg.blocks[b].code)
                for b in sorted(m)
            ]
            exact = csi_schedule_exact(threads)
            heur = csi_schedule(threads)
            assert exact.cost <= heur.cost
            checked += 1
        assert checked >= 3
