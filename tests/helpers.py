"""Shared test helpers: the MIMDC program corpus and the cross-machine
equivalence oracle."""

from __future__ import annotations

import numpy as np

from repro import ConversionOptions, convert_source, simulate_mimd, simulate_simd
from repro.mimd.flatten import flatten_cfg
from repro.mimd.interp import InterpreterMachine

# ----------------------------------------------------------------------
# The paper's listings
# ----------------------------------------------------------------------

#: Listing 1 / Listing 4: the running example. `x` starts 0 on every PE
#: (memory is zeroed), so literal-condition versions loop forever; this
#: version seeds x from procnum, keeping the same control structure.
LISTING1_SHAPE = """
main() {
    poly int x;
    if (x) {
        do { x = 1; } while (x);
    } else {
        do { x = 2; } while (x);
    }
    return (x);
}
"""

#: Listing 3 = Listing 1 + barrier before F.
LISTING3_SHAPE = """
main() {
    poly int x;
    if (x) {
        do { x = 1; } while (x);
    } else {
        do { x = 2; } while (x);
    }
    wait;
    return (x);
}
"""

#: An executable variant of the listing-1 control structure whose loops
#: terminate and whose branch outcomes differ across PEs.
LISTING1_RUNNABLE = """
main() {
    poly int x;
    x = procnum % 3;
    if (x) {
        do { x = x - 1; } while (x);
    } else {
        do { x = x + 2; } while (x - 4);
    }
    return (x);
}
"""

LISTING3_RUNNABLE = LISTING1_RUNNABLE.replace(
    "return (x);", "wait;\n    return (x);"
)

#: Listing 2's recursive shape: main -> g, g -> g.
RECURSIVE = """
int g(int n) {
    if (n < 2) { return (1); }
    poly int r;
    r = g(n - 1);
    return (r * n);
}
main() {
    poly int v;
    v = g(procnum % 4 + 1);
    return (v);
}
"""

MUTUAL_RECURSIVE = """
int is_odd(int n);
int is_even(int n) {
    if (n == 0) { return (1); }
    poly int r; r = is_odd(n - 1); return (r);
}
int is_odd(int n) {
    if (n == 0) { return (0); }
    poly int r; r = is_even(n - 1); return (r);
}
main() {
    poly int v;
    v = is_even(procnum);
    return (v);
}
"""

SPAWN_WORKERS = """
main() {
    poly int x;
    x = procnum;
    if (procnum == 0) {
        spawn(worker);
    }
    return (x);
worker:
    x = 100 + procnum;
    halt;
}
"""

ROUTER_ROTATE = """
main() {
    poly int x; poly int y;
    x = procnum * 10;
    wait;
    y = x[[(procnum + 1) % nproc]];
    return (y);
}
"""

MONO_BROADCAST = """
mono int total = 5;
main() {
    poly int x;
    x = total * 2 + nproc;
    total = 7;
    return (x + total);
}
"""

KITCHEN_SINK = """
main() {
    poly float f;
    poly int i; poly int s;
    s = 0;
    for (i = 0; i < procnum + 2; i += 1) {
        if (i == 3) { continue; }
        if (i > 5) { break; }
        s += i;
    }
    f = s * 1.5;
    s = f > 4.0 ? s : -s;
    return (s);
}
"""

DIVERGE_3WAY = """
main() {
    poly int x; poly int r;
    x = procnum % 3;
    r = 0;
    if (x == 0) { r = 10; }
    else {
        if (x == 1) { r = 20; }
        else { r = 30; }
    }
    wait;
    return (r + x);
}
"""

NESTED_LOOPS = """
main() {
    poly int i; poly int j; poly int s;
    s = 0;
    i = 0;
    while (i < procnum % 3 + 1) {
        j = 0;
        while (j < 3) {
            s = s + i * j;
            j = j + 1;
        }
        i = i + 1;
    }
    return (s);
}
"""

FLOAT_MATH = """
main() {
    poly float a; poly float b;
    a = procnum * 0.5 + 1.0;
    b = a * a - a / 2.0;
    if (b > 3.0) { b = b - 3.0; }
    return (b * 4.0);
}
"""

#: Everything that exercises the oracle (name, source).
CORPUS: list[tuple[str, str]] = [
    ("listing1", LISTING1_RUNNABLE),
    ("listing3", LISTING3_RUNNABLE),
    ("recursive", RECURSIVE),
    ("mutual_recursive", MUTUAL_RECURSIVE),
    ("router_rotate", ROUTER_ROTATE),
    ("mono_broadcast", MONO_BROADCAST),
    ("kitchen_sink", KITCHEN_SINK),
    ("diverge_3way", DIVERGE_3WAY),
    ("nested_loops", NESTED_LOOPS),
    ("float_math", FLOAT_MATH),
]

#: Option sets exercised against the corpus. The time-split entries
#: pin ``lazy=False``: time splitting needs the whole automaton, so it
#: is incompatible with lazy conversion (and must stay eager even when
#: ``REPRO_LAZY=1`` flips the default, as the lazy CI leg does).
OPTION_MATRIX = [
    ConversionOptions(),
    ConversionOptions(compress=True),
    ConversionOptions(time_split=True, lazy=False),
    ConversionOptions(compress=True, time_split=True, lazy=False),
]


def run_all_machines(source: str, npes: int = 8, active: int | None = None,
                     options: ConversionOptions = ConversionOptions(),
                     max_steps: int = 200_000):
    """Convert + execute on (SIMD meta-state, MIMD reference,
    interpreter baseline). Returns (result, simd, mimd, interp)."""
    result = convert_source(source, options)
    simd = simulate_simd(result, npes=npes, active=active, max_steps=max_steps)
    mimd = simulate_mimd(result, nprocs=npes, active=active, max_steps=max_steps)
    interp = InterpreterMachine(npes=npes, costs=options.costs).run(
        flatten_cfg(result.cfg), active=active, max_steps=max_steps
    )
    return result, simd, mimd, interp


def assert_equivalent(simd, mimd, interp=None, *, check_poly: bool = True):
    """The oracle: every machine computed identical results."""
    np.testing.assert_array_equal(simd.returns, mimd.returns)
    if check_poly:
        np.testing.assert_array_equal(simd.poly, mimd.poly)
        np.testing.assert_array_equal(simd.mono, mimd.mono)
    if interp is not None:
        np.testing.assert_array_equal(interp.returns, mimd.returns)
        if check_poly:
            np.testing.assert_array_equal(interp.poly, mimd.poly)
