"""Unit tests for the error hierarchy."""

import pytest

from repro.errors import (
    ConversionError,
    LexError,
    MachineError,
    MscError,
    ParseError,
    SemanticError,
    SourceError,
)


class TestHierarchy:
    @pytest.mark.parametrize("cls", [
        SourceError, LexError, ParseError, SemanticError,
        ConversionError, MachineError,
    ])
    def test_all_derive_from_msc_error(self, cls):
        assert issubclass(cls, MscError)

    def test_front_end_errors_are_source_errors(self):
        for cls in (LexError, ParseError, SemanticError):
            assert issubclass(cls, SourceError)


class TestSourceError:
    def test_position_in_message(self):
        e = SourceError("bad thing", line=3, col=9)
        assert "line 3:9" in str(e)
        assert e.line == 3 and e.col == 9

    def test_position_optional(self):
        e = SourceError("bad thing")
        assert str(e) == "bad thing"
        assert e.line is None

    def test_line_without_col(self):
        e = SourceError("oops", line=2)
        assert "line 2" in str(e)

    def test_attributes_preserved(self):
        e = ParseError("unexpected", line=7, col=1)
        assert e.message == "unexpected"
