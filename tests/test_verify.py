"""Tests for the shared frontier verifier (``repro.verify``).

Covers the exploration engine (exhaustiveness on eager graphs, BFS
path validity, the bitset co-residence query against a nested-loop
reference, deterministic budgeted truncation on lazy engines), the
realizability walk feeding ``dead-meta-prune``, witness emission and
replay (library + ``repro replay`` CLI), and the incremental lazy
lint contract over the whole ``tests/lint_corpus``: cfg-phase
diagnostics identical to eager everywhere, full diagnostics identical
on every program eager conversion can survive.
"""

from pathlib import Path

import numpy as np
import pytest

from repro import (
    ConversionOptions,
    convert_source,
    simulate_mimd,
    simulate_simd,
)
from repro.__main__ import main
from repro.lint import Severity, lint_source
from repro.verify import (
    WitnessSeed,
    confirm_seed,
    explore,
    lockstep_pairs,
    realizable_states,
    replay_witness,
)
from repro.workloads import all_sources

CORPUS = Path(__file__).parent / "lint_corpus"
CORPUS_FILES = sorted(CORPUS.glob("*.mimdc"))
EXPLOSION_STEMS = {"explosion_bomb", "explosion_branch_tree",
                   "explosion_random_walks", "explosion_uniform_tree"}
#: Corpus programs eager conversion completes on (the back half of the
#: lint pipeline runs, so *all* diagnostics are comparable to lazy).
TRACTABLE_FILES = [p for p in CORPUS_FILES
                   if p.stem not in EXPLOSION_STEMS]

#: cfg-phase analyzer codes the lazy path must reproduce exactly
#: (MSC03x excluded: the explosion hard cap legitimately differs in
#: *severity* between eager and lazy — pinned in test_lint.py).
CFG_CODES = ("MSC010", "MSC011", "MSC040", "MSC041", "MSC042")


def eager(source: str, **kw) -> "object":
    return convert_source(source, ConversionOptions(**kw), cache=None)


def pair_reference(graph) -> set:
    """Nested-loop co-residence: the query the bitset product replaces."""
    return {frozenset((a, b))
            for m in graph.states if len(m) >= 2
            for a in m for b in m if a < b}


class TestExplore:
    @pytest.mark.parametrize("name", sorted(all_sources()))
    def test_eager_exploration_is_exhaustive(self, name):
        result = eager(all_sources()[name])
        frontier = explore(result.graph)
        assert set(frontier.order) == result.graph.states
        assert frontier.discovered == len(result.graph.states)
        assert not frontier.truncated
        assert frontier.aborted is None

    @pytest.mark.parametrize("name", ["divergent_phases", "spawn_waves",
                                      "barrier_phases"])
    def test_path_to_walks_real_arcs(self, name):
        result = eager(all_sources()[name])
        graph = result.graph
        frontier = explore(graph)
        for m in frontier.order:
            path = frontier.path_to(m)
            assert path[0] == graph.start and path[-1] == m
            for src, dst in zip(path, path[1:]):
                assert dst in graph.successors(src), (src, dst)

    @pytest.mark.parametrize("name", sorted(all_sources()))
    def test_block_pairs_match_nested_reference(self, name):
        result = eager(all_sources()[name])
        frontier = explore(result.graph)
        assert frontier.block_pairs() == pair_reference(result.graph)

    def test_budgeted_lazy_exploration_is_deterministic(self):
        src = (CORPUS / "explosion_branch_tree.mimdc").read_text()

        def run():
            result = convert_source(src, ConversionOptions(lazy=True),
                                    cache=None)
            return explore(result.graph, engine=result._engine,
                           budget=200)

        a, b = run(), run()
        assert a.order == b.order
        assert a.truncated and b.truncated
        assert a.explored == b.explored == 200
        assert a.discovered == b.discovered > a.explored


class TestLockstep:
    def test_refines_graph_pairs(self):
        # The path-sensitive walk may only *remove* pairs the graph
        # over-approximates, never invent new ones.
        src = (CORPUS / "slot_race.mimdc").read_text()
        result = eager(src)
        pairs = lockstep_pairs(result.cfg)
        assert pairs is not None and pairs
        assert pairs <= explore(result.graph).block_pairs()

    def test_co_resident_pairs_is_the_same_query(self):
        from repro.lint.races import co_resident_pairs

        src = (CORPUS / "read_write_race.mimdc").read_text()
        cfg = eager(src).cfg
        assert co_resident_pairs(cfg) == lockstep_pairs(cfg)

    def test_cap_overflow_returns_none(self):
        src = (CORPUS / "clean_barrier.mimdc").read_text()
        cfg = eager(src).cfg
        assert lockstep_pairs(cfg, cap=1) is None


class TestRealizability:
    @pytest.mark.parametrize("name", sorted(all_sources()))
    def test_realizable_subset_of_states(self, name):
        result = eager(all_sources()[name])
        realizable = realizable_states(result.cfg)
        assert realizable is not None
        assert realizable <= result.graph.states
        assert result.graph.start in realizable

    def test_dead_meta_prune_drops_unrealizable_states(self):
        # spawn_waves registers member-choice combinations no PE
        # population can dispatch; -O2 prunes them before encoding.
        src = all_sources()["spawn_waves"]
        o1 = eager(src, opt_level=1)
        o2 = eager(src, opt_level=2)
        realizable = realizable_states(o1.cfg)
        assert len(o2.graph.states) < len(o1.graph.states)
        assert o2.graph.states == realizable

    def test_dead_meta_prune_is_bit_identical(self):
        src = all_sources()["spawn_waves"]
        o1 = eager(src, opt_level=1)
        o2 = eager(src, opt_level=2)
        a = simulate_simd(o1, npes=8, active=4)
        b = simulate_simd(o2, npes=8, active=4)
        mimd = simulate_mimd(o2, nprocs=8, active=4)
        for got, want in ((a, b), (b, mimd)):
            assert np.array_equal(got.returns, want.returns,
                                  equal_nan=True)
            assert np.array_equal(got.poly, want.poly)
            assert np.array_equal(got.mono, want.mono)

    def test_prune_counter_reported(self):
        src = all_sources()["spawn_waves"]
        report = eager(src, opt_level=2).report
        record = next(r for r in report.records if r.name == "opt-meta")
        passes = {p.name: p for p in record.subrecords}
        assert passes["dead-meta-prune"].counters["unrealizable_pruned"] == 2

    def test_cap_overflow_returns_none(self):
        src = all_sources()["divergent_phases"]
        cfg = eager(src).cfg
        assert realizable_states(cfg, cap=2) is None


class TestWitness:
    def emit(self, stem, tmp_path, lazy=False):
        path = CORPUS / f"{stem}.mimdc"
        options = ConversionOptions(lazy=True) if lazy else None
        result = lint_source(path.read_text(), options,
                             filename=path.name,
                             emit_witness_dir=str(tmp_path))
        return result

    @pytest.mark.parametrize("stem,code", [
        ("slot_race", "MSC020"),
        ("read_write_race", "MSC021"),
        ("barrier_mismatch", "MSC011"),
        ("barrier_deadlock", "MSC010"),
    ])
    def test_emit_and_replay(self, stem, code, tmp_path):
        result = self.emit(stem, tmp_path)
        mine = [w for w in result.witnesses if f"--{code}--" in w]
        assert mine, (code, result.witnesses)
        for path in mine:
            report = replay_witness(path)
            assert report.ok, report.message
            assert report.code == code
            assert report.nprocs >= 2

    def test_witness_file_still_compiles(self, tmp_path):
        # `//` directives are comments to the lexer: the witness is a
        # drop-in corpus program.
        result = self.emit("slot_race", tmp_path)
        text = Path(result.witnesses[0]).read_text()
        assert "// msc-witness: code=MSC020" in text
        eager(text)

    def test_replay_cli_exit_codes(self, tmp_path, capsys):
        result = self.emit("slot_race", tmp_path)
        assert main(["replay", *result.witnesses]) == 0
        assert "ok:" in capsys.readouterr().out
        bogus = tmp_path / "not_a_witness.mimdc"
        bogus.write_text("main() { return (0); }\n")
        assert main(["replay", str(bogus)]) == 1
        assert "FAIL:" in capsys.readouterr().out

    def test_lint_cli_emits(self, tmp_path, capsys):
        # Warnings without --Werror exit 0; the point here is the
        # side-channel: witness files written and announced on stderr.
        out = tmp_path / "w"
        status = main(["lint", str(CORPUS / "slot_race.mimdc"),
                       "--emit-witness", str(out)])
        assert status == 0
        assert sorted(out.glob("*.mimdc"))
        assert "witness:" in capsys.readouterr().err

    def test_unconfirmed_seed_skipped(self):
        # A seed over blocks no schedule co-executes is dropped, not
        # emitted: emission never invents diagnostics.  The entry and
        # exit blocks run at strictly disjoint times on every PE.
        src = (CORPUS / "clean_barrier.mimdc").read_text()
        cfg = eager(src).cfg
        bids = sorted(cfg.blocks)
        seed = WitnessSeed(code="MSC020", blocks=(bids[0], bids[-1]))
        assert confirm_seed(cfg, seed) is None


def cfg_phase_codes(diagnostics):
    return sorted(d.code for d in diagnostics if d.code in CFG_CODES)


def full_signature(diagnostics):
    return sorted((d.code, d.severity, d.message,
                   (d.span.line, d.span.col) if d.span else None)
                  for d in diagnostics)


class TestLazyIncremental:
    @pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
    def test_cfg_phase_codes_match_eager(self, path):
        src = path.read_text()
        eager_result = lint_source(src, filename=path.name)
        lazy_result = lint_source(src, ConversionOptions(lazy=True),
                                  filename=path.name)
        assert (cfg_phase_codes(lazy_result.diagnostics)
                == cfg_phase_codes(eager_result.diagnostics))

    @pytest.mark.parametrize("path", TRACTABLE_FILES,
                             ids=lambda p: p.stem)
    def test_full_diagnostics_match_eager(self, path):
        # On programs eager conversion can complete, the incremental
        # meta phase must reproduce every diagnostic exactly — codes,
        # severities, messages, spans.
        src = path.read_text()
        eager_result = lint_source(src, filename=path.name)
        lazy_result = lint_source(src, ConversionOptions(lazy=True),
                                  filename=path.name)
        assert (full_signature(lazy_result.diagnostics)
                == full_signature(eager_result.diagnostics))

    def test_explosion_lint_completes_with_truncation_note(self):
        # 3^24 reachable states: eager conversion refuses outright; the
        # budgeted incremental verifier explores a prefix and says so.
        path = CORPUS / "explosion_random_walks.mimdc"
        result = lint_source(path.read_text(),
                             ConversionOptions(lazy=True),
                             filename=path.name)
        assert result.ok()
        notes = [d for d in result.diagnostics if d.code == "MSC050"]
        assert len(notes) == 1
        assert notes[0].severity == Severity.INFO
        assert "--verify-budget" in notes[0].hint

    def test_msc050_never_fires_eagerly(self):
        for path in TRACTABLE_FILES:
            result = lint_source(path.read_text(), filename=path.name)
            assert not any(d.code == "MSC050" for d in result.diagnostics)
