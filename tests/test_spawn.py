"""Unit tests for restricted dynamic process creation (section 3.2.5)."""

import numpy as np
import pytest

from repro import ConversionOptions, convert_source, simulate_mimd, simulate_simd
from repro.core.convert import convert, member_choices
from repro.errors import MachineError
from repro.ir.block import SpawnT
from repro.ir.lowering import lower_program
from repro.lang.parser import parse
from repro.lang.sema import analyze

from tests.helpers import SPAWN_WORKERS, assert_equivalent


def lower(src: str):
    return lower_program(analyze(parse(src)))


class TestSpawnConversion:
    def test_spawn_always_takes_both_exits(self):
        cfg = lower(SPAWN_WORKERS)
        spawn_bid = next(b.bid for b in cfg.blocks.values()
                         if isinstance(b.terminator, SpawnT))
        # "This restricted type of spawn instruction looks just like a
        # conditional jump, except ... both paths must be taken (the
        # compressed meta state transition rule)."
        for compress in (False, True):
            choices = member_choices(cfg, spawn_bid, compress)
            assert len(choices) == 1
            assert len(choices[0]) == 2

    def test_spawn_meta_state_contains_child_and_cont(self):
        cfg = lower(SPAWN_WORKERS)
        graph = convert(cfg)
        spawn_bid = next(b.bid for b in cfg.blocks.values()
                         if isinstance(b.terminator, SpawnT))
        term = cfg.blocks[spawn_bid].terminator
        both = frozenset((term.child, term.cont))
        spawn_meta = frozenset((spawn_bid,))
        if spawn_meta in graph.states:
            assert both in graph.successors(spawn_meta)


class TestSpawnExecution:
    def test_matches_oracle(self):
        r = convert_source(SPAWN_WORKERS)
        simd = simulate_simd(r, npes=8, active=4)
        mimd = simulate_mimd(r, nprocs=8, active=4)
        assert_equivalent(simd, mimd)

    def test_children_inherit_parent_memory(self):
        src = """
main() {
    poly int x; poly int seen;
    x = procnum * 7 + 3;
    spawn(child);
    return (x);
child:
    seen = x;
    halt;
}
"""
        r = convert_source(src)
        simd = simulate_simd(r, npes=8, active=4)
        mimd = simulate_mimd(r, nprocs=8, active=4)
        assert_equivalent(simd, mimd)
        # Children 4..7 copied x from parents 0..3 (x = pid*7+3 of parent).
        seen_slot = next(s.index for s in r.cfg.poly_slots
                         if s.name.endswith("seen"))
        got = sorted(simd.poly[seen_slot, 4:].tolist())
        assert got == sorted((np.arange(4) * 7 + 3).tolist())

    def test_halt_returns_pe_to_pool(self):
        # Two sequential spawns can reuse PEs that halted.
        src = """
main() {
    poly int x;
    x = 1;
    spawn(w1);
    wait;
    spawn(w2);
    return (x);
w1: x = 10; halt;
w2: x = 20; halt;
}
"""
        r = convert_source(src)
        # 2 active starters + 2 concurrent spawn waves of 2 each; after
        # wave 1 halts, wave 2 reuses the same PEs: 4 PEs suffice.
        simd = simulate_simd(r, npes=4, active=2)
        mimd = simulate_mimd(r, nprocs=4, active=2)
        assert_equivalent(simd, mimd)

    def test_spawn_exhaustion_raises(self):
        r = convert_source(SPAWN_WORKERS)
        with pytest.raises(MachineError, match="spawn"):
            simulate_simd(r, npes=4, active=4)  # no free PEs at all
        with pytest.raises(MachineError, match="spawn"):
            simulate_mimd(r, nprocs=4, active=4)

    def test_spawned_pe_count_equals_arrivals(self):
        # 3 of 8 PEs spawn => exactly 3 idle PEs activated.
        src = """
main() {
    poly int x;
    x = procnum;
    if (procnum < 3) { spawn(w); }
    return (x);
w:  x = 1000 + procnum; halt;
}
"""
        r = convert_source(src)
        simd = simulate_simd(r, npes=16, active=8)
        x_slot = next(s.index for s in r.cfg.poly_slots
                      if s.name.endswith(".x"))
        ran_worker = (simd.poly[x_slot] >= 1000).sum()
        assert ran_worker == 3

    def test_compressed_spawn(self):
        r = convert_source(SPAWN_WORKERS, ConversionOptions(compress=True))
        simd = simulate_simd(r, npes=8, active=4)
        mimd = simulate_mimd(r, nprocs=8, active=4)
        assert_equivalent(simd, mimd)
