"""Unit tests for restricted dynamic process creation (section 3.2.5)."""

import numpy as np
import pytest

from repro import ConversionOptions, convert_source, simulate_mimd, simulate_simd
from repro.core.convert import convert, member_choices
from repro.errors import MachineError
from repro.ir.block import SpawnT
from repro.ir.lowering import lower_program
from repro.lang.parser import parse
from repro.lang.sema import analyze

from tests.helpers import SPAWN_WORKERS, assert_equivalent


def lower(src: str):
    return lower_program(analyze(parse(src)))


class TestSpawnConversion:
    def test_spawn_always_takes_both_exits(self):
        cfg = lower(SPAWN_WORKERS)
        spawn_bid = next(b.bid for b in cfg.blocks.values()
                         if isinstance(b.terminator, SpawnT))
        # "This restricted type of spawn instruction looks just like a
        # conditional jump, except ... both paths must be taken (the
        # compressed meta state transition rule)."
        for compress in (False, True):
            choices = member_choices(cfg, spawn_bid, compress)
            assert len(choices) == 1
            assert len(choices[0]) == 2

    def test_spawn_meta_state_contains_child_and_cont(self):
        cfg = lower(SPAWN_WORKERS)
        graph = convert(cfg)
        spawn_bid = next(b.bid for b in cfg.blocks.values()
                         if isinstance(b.terminator, SpawnT))
        term = cfg.blocks[spawn_bid].terminator
        both = frozenset((term.child, term.cont))
        spawn_meta = frozenset((spawn_bid,))
        if spawn_meta in graph.states:
            assert both in graph.successors(spawn_meta)


class TestSpawnExecution:
    def test_matches_oracle(self):
        r = convert_source(SPAWN_WORKERS)
        simd = simulate_simd(r, npes=8, active=4)
        mimd = simulate_mimd(r, nprocs=8, active=4)
        assert_equivalent(simd, mimd)

    def test_children_inherit_parent_memory(self):
        src = """
main() {
    poly int x; poly int seen;
    x = procnum * 7 + 3;
    spawn(child);
    return (x);
child:
    seen = x;
    halt;
}
"""
        r = convert_source(src)
        simd = simulate_simd(r, npes=8, active=4)
        mimd = simulate_mimd(r, nprocs=8, active=4)
        assert_equivalent(simd, mimd)
        # Children 4..7 copied x from parents 0..3 (x = pid*7+3 of parent).
        seen_slot = next(s.index for s in r.cfg.poly_slots
                         if s.name.endswith("seen"))
        got = sorted(simd.poly[seen_slot, 4:].tolist())
        assert got == sorted((np.arange(4) * 7 + 3).tolist())

    def test_halt_returns_pe_to_pool(self):
        # Two sequential spawns can reuse PEs that halted.
        src = """
main() {
    poly int x;
    x = 1;
    spawn(w1);
    wait;
    spawn(w2);
    return (x);
w1: x = 10; halt;
w2: x = 20; halt;
}
"""
        r = convert_source(src)
        # 2 active starters + 2 concurrent spawn waves of 2 each; after
        # wave 1 halts, wave 2 reuses the same PEs: 4 PEs suffice.
        simd = simulate_simd(r, npes=4, active=2)
        mimd = simulate_mimd(r, nprocs=4, active=2)
        assert_equivalent(simd, mimd)

    def test_spawn_exhaustion_raises(self):
        r = convert_source(SPAWN_WORKERS)
        with pytest.raises(MachineError, match="spawn"):
            simulate_simd(r, npes=4, active=4)  # no free PEs at all
        with pytest.raises(MachineError, match="spawn"):
            simulate_mimd(r, nprocs=4, active=4)

    def test_spawned_pe_count_equals_arrivals(self):
        # 3 of 8 PEs spawn => exactly 3 idle PEs activated.
        src = """
main() {
    poly int x;
    x = procnum;
    if (procnum < 3) { spawn(w); }
    return (x);
w:  x = 1000 + procnum; halt;
}
"""
        r = convert_source(src)
        simd = simulate_simd(r, npes=16, active=8)
        x_slot = next(s.index for s in r.cfg.poly_slots
                      if s.name.endswith(".x"))
        ran_worker = (simd.poly[x_slot] >= 1000).sum()
        assert ran_worker == 3

    def test_compressed_spawn(self):
        r = convert_source(SPAWN_WORKERS, ConversionOptions(compress=True))
        simd = simulate_simd(r, npes=8, active=4)
        mimd = simulate_mimd(r, nprocs=8, active=4)
        assert_equivalent(simd, mimd)


class TestSpawnRegisterCopyOrdering:
    """Pin the spawn staging order: parent poly registers are copied to
    the children *before* ``reset_pes`` runs, and reset touches only the
    stacks — the paper's spawn semantics hand the child its parent's
    context with clean stacks."""

    def test_reset_preserves_copied_poly(self):
        from repro.simd import vecops

        st = vecops.PeState(npes=4, n_poly=2, n_mono=1,
                            stack_depth=8, rstack_depth=8)
        parents = np.array([0, 1])
        children = np.array([2, 3])
        st.poly[:, parents] = [[11.0, 22.0], [33.0, 44.0]]
        st.sp[:] = 5
        st.rsp[:] = 3
        st.stack[:5, :] = 9.0
        # The machine's spawn sequence:
        st.poly[:, children] = st.poly[:, parents]
        st.reset_pes(children)
        assert np.array_equal(st.poly[:, children], st.poly[:, parents])
        assert (st.sp[children] == 0).all()
        assert (st.rsp[children] == 0).all()
        # Parents untouched.
        assert (st.sp[parents] == 5).all()
        assert (st.rsp[parents] == 3).all()

    def test_children_start_with_clean_stacks_machine_level(self):
        # A child that underflows unless its stacks were reset would
        # crash; a child that lost the copied registers would compute
        # garbage. This worker reads the inherited register right away.
        src = """
main() {
    poly int x; poly int seen;
    x = procnum + 100;
    spawn(child);
    return (x);
child:
    seen = x * 2;
    halt;
}
"""
        r = convert_source(src)
        for use_plans in (False, True):
            from repro.simd.machine import SimdMachine

            m = SimdMachine(npes=8, costs=r.options.costs,
                            use_plans=use_plans)
            res = m.run(r.simd_program(), active=4)
            seen_slot = next(s.index for s in r.cfg.poly_slots
                             if s.name.endswith("seen"))
            got = sorted(res.poly[seen_slot, 4:].tolist())
            assert got == [2 * (p + 100) for p in range(4)]
