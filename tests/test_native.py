"""The native C backend: differential identity, graceful fallback,
artifact caching, and the ``--emit c`` CLI surface.

The contract under test (docs/internals.md §17): ``backend=native``
and ``backend=native-mt`` produce bit-identical :class:`SimdResult`\\ s
to every other backend; when the toolchain is missing or the build
fails the machine falls back to the NumPy kernels with a
:class:`RuntimeWarning` and records what actually ran; and the shared
library is content-addressed so warm runs never re-invoke the
compiler.
"""

import pickle
import subprocess

import numpy as np
import pytest

from repro.codegen.native import NATIVE_VERSION, NativeProgram, compile_native
from repro.errors import MachineError
from repro.pipeline import ConversionOptions, convert_source
from repro.simd import nativert
from repro.simd.machine import SimdMachine
from repro.workloads import STANDARD

from tests.test_kernels import assert_identical, run_backends

requires_toolchain = pytest.mark.skipif(
    not nativert.native_available(),
    reason=nativert.unavailable_reason() or "")


def run_native(result, npes, backend="native", active=None, shards=None):
    machine = SimdMachine(npes=npes, costs=result.options.costs,
                          backend=backend, shards=shards)
    return machine.run(result.simd_program(), active=active)


@requires_toolchain
class TestDifferential:
    """Acceptance: native bit-identical to kernels on all library
    workloads × compress on/off (and sharded native-mt likewise)."""

    @pytest.mark.parametrize("name", sorted(STANDARD))
    @pytest.mark.parametrize("compress", (False, True))
    def test_workload_bit_identical(self, name, compress):
        src = STANDARD[name]()
        result = convert_source(src, ConversionOptions(compress=compress))
        for npes in (8, 33):
            active = npes // 2 if "spawn" in src else None
            ref = run_backends(result, npes, active=active,
                               backends=("kernels",))["kernels"]
            for backend in ("native", "native-mt"):
                shards = 4 if backend.endswith("-mt") else None
                res = run_native(result, npes, backend=backend,
                                 active=active, shards=shards)
                assert res.backend_used == backend
                assert_identical(res, ref, (name, compress, npes, backend))

    def test_native_mt_genuinely_sharded(self):
        result = convert_source(STANDARD["divergent_loops"]())
        res = run_native(result, 33, backend="native-mt", shards=4)
        assert res.backend_used == "native-mt"
        assert res.shards == 4

    def test_single_pe(self):
        result = convert_source(STANDARD["mandelbrot"]())
        a = run_native(result, 1)
        b = run_backends(result, 1, backends=("interp",))["interp"]
        assert_identical(a, b, "single_pe")


@requires_toolchain
class TestErrorReconstruction:
    def test_division_by_zero_exact_message(self):
        src = "main() { poly int x; x = 1 / (procnum - procnum); return (x); }"
        result = convert_source(src)
        msgs = {}
        for backend in ("kernels", "native"):
            with pytest.raises(MachineError) as exc:
                run_native(result, 4, backend=backend)
            msgs[backend] = str(exc.value)
        assert msgs["native"] == msgs["kernels"]
        assert "zero" in msgs["native"]

    def test_native_mt_error_matches_serial(self):
        src = "main() { poly int x; x = 1 / (procnum - procnum); return (x); }"
        result = convert_source(src)
        with pytest.raises(MachineError) as serial:
            run_native(result, 8, backend="native")
        with pytest.raises(MachineError) as sharded:
            run_native(result, 8, backend="native-mt", shards=4)
        assert str(sharded.value) == str(serial.value)


class TestFallbacks:
    """Satellite: compiler-missing and compile-failure paths must warn,
    record ``backend_used == "kernels"``, and stay bit-identical."""

    def _expect_fallback(self, result, match, backend="native",
                         expect_used="kernels"):
        ref = run_backends(result, 8, backends=("kernels",))["kernels"]
        with pytest.warns(RuntimeWarning, match=match):
            res = run_native(result, 8, backend=backend,
                             shards=4 if backend.endswith("-mt") else None)
        assert res.backend_used == expect_used
        assert_identical(res, ref, ("fallback", match))
        return res

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        result = convert_source(STANDARD["divergent_loops"]())
        self._expect_fallback(result, "REPRO_NATIVE_DISABLE")

    def test_no_compiler_on_path(self, monkeypatch):
        monkeypatch.setattr(nativert, "_find_cc", lambda: None)
        result = convert_source(STANDARD["divergent_loops"]())
        self._expect_fallback(result, "no C compiler")

    def test_cffi_missing(self, monkeypatch):
        import builtins

        real_import = builtins.__import__

        def fake_import(name, *args, **kwargs):
            if name == "cffi":
                raise ImportError("No module named 'cffi'")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", fake_import)
        result = convert_source(STANDARD["divergent_loops"]())
        self._expect_fallback(result, "cffi is not importable")

    def test_compile_failure(self, monkeypatch):
        def failing_run(cmd, **kwargs):
            return subprocess.CompletedProcess(
                cmd, returncode=1, stdout="", stderr="synthetic ICE")

        monkeypatch.setattr(nativert.subprocess, "run", failing_run)
        monkeypatch.setattr(nativert, "compiler_id", lambda: "fake-cc 0")
        # A unique program: nothing in the in-process dlopen cache or
        # the (hermetic) artifact cache may satisfy the load.
        src = "main() { poly int x; x = procnum + 41; return (x); }"
        result = convert_source(src)
        self._expect_fallback(result, "build failed")

    def test_native_mt_falls_back_to_kernels_mt(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        result = convert_source(STANDARD["divergent_loops"]())
        self._expect_fallback(result, "REPRO_NATIVE_DISABLE",
                              backend="native-mt", expect_used="kernels-mt")

    @requires_toolchain
    def test_lazy_mode_documented_fallback(self):
        from repro.pipeline import simulate_simd

        result = convert_source(STANDARD["divergent_loops"](),
                                ConversionOptions(lazy=True))
        with pytest.warns(RuntimeWarning, match="lazy conversion"):
            res = simulate_simd(result, npes=8, backend="native")
        assert res.backend_used == "kernels"

    def test_foreign_cost_model_cascades_to_plan(self):
        from dataclasses import replace

        from repro.ir.instr import DEFAULT_COSTS

        result = convert_source(STANDARD["divergent_loops"]())
        prog = result.simd_program()
        other = replace(DEFAULT_COSTS, globalor_cost=99)
        machine = SimdMachine(npes=8, costs=other, backend="native")
        with pytest.warns(RuntimeWarning, match="cost model"):
            res = machine.run(prog)
        # native refuses (foreign costs), then kernels refuses for the
        # same reason: the plan executor runs under the machine's model.
        assert res.backend_used == "plan"


@requires_toolchain
class TestArtifactCache:
    def test_shared_library_content_addressed(self):
        src = "main() { poly int x; x = procnum * 3; return (x); }"
        nat = convert_source(src).simd_program().native()
        so = nativert.build_shared(nat)
        assert so.exists()
        assert so.name == f"{nativert.artifact_key(nat)}.so"
        # The .c source is kept beside the artifact for debugging.
        assert so.with_suffix(".c").read_text() == nat.c_source

    def test_warm_load_skips_compiler(self, monkeypatch):
        src = "main() { poly int x; x = procnum * 5; return (x); }"
        nat = convert_source(src).simd_program().native()
        nativert.build_shared(nat)
        nativert._loaded.pop(nat.digest(), None)

        def boom(*args, **kwargs):
            raise AssertionError("compiler invoked on a warm artifact")

        # compiler_id() is memoized by the build above, so the only
        # subprocess a warm load could spawn is the compile itself.
        monkeypatch.setattr(nativert.subprocess, "run", boom)
        fns = nativert.load_native(nat)
        assert set(fns) == set(nat.entry_names)

    def test_key_includes_compiler_identity(self, monkeypatch):
        nat = convert_source(STANDARD["divergent_loops"]()) \
            .simd_program().native()
        a = nativert.artifact_key(nat)
        monkeypatch.setattr(nativert, "compiler_id", lambda: "other-cc 9")
        assert nativert.artifact_key(nat) != a


class TestNativeProgram:
    def test_generated_and_cached_on_program(self):
        prog = convert_source(STANDARD["divergent_loops"]()).simd_program()
        nat = prog.native()
        assert isinstance(nat, NativeProgram)
        assert prog.native() is nat

    def test_one_entry_per_node(self):
        prog = convert_source(STANDARD["odd_even_sort"]()).simd_program()
        nat = prog.native()
        assert set(nat.entry_names) == set(prog.nodes)
        assert nat.stats()["native_nodes"] == prog.node_count()
        for fname in nat.entry_names.values():
            assert f"i64 {fname}(" in nat.c_source

    def test_digest_deterministic(self):
        src = STANDARD["barrier_phases"]()
        a = compile_native(convert_source(src).simd_program())
        b = compile_native(convert_source(src).simd_program())
        assert a.digest() == b.digest()
        assert a.c_source == b.c_source

    def test_version_stamped(self):
        nat = convert_source(STANDARD["divergent_loops"]()) \
            .simd_program().native()
        assert nat.version == NATIVE_VERSION
        assert nat.stats()["native_version"] == NATIVE_VERSION

    def test_program_pickle_carries_native(self):
        prog = convert_source(STANDARD["mandelbrot"]()).simd_program()
        nat = prog.native()
        clone = pickle.loads(pickle.dumps(prog))
        assert clone._native != "unbuilt"
        assert clone.native().digest() == nat.digest()

    def test_warm_compile_cache_carries_c_source(self, tmp_path):
        src = STANDARD["divergent_loops"]()
        cold = convert_source(src, cache=str(tmp_path))
        assert cold.report.cache == "miss"
        cold_nat = cold.simd_program().native()
        warm = convert_source(src, cache=str(tmp_path))
        assert warm.report.cache == "hit"
        assert warm.simd_program()._native != "unbuilt"
        assert warm.simd_program().native().c_source == cold_nat.c_source

    def test_native_stage_reported(self):
        r = convert_source(STANDARD["divergent_loops"]())
        rec = r.report.stage("native")
        assert rec.counters["native_nodes"] == r.simd_program().node_count()
        assert rec.counters["native_bytes"] > 0


class TestEmitC:
    def test_emit_c_prints_source(self, tmp_path, capsys):
        from repro.__main__ import main

        f = tmp_path / "p.mimdc"
        f.write_text(STANDARD["divergent_loops"]())
        assert main(["compile", str(f), "--emit", "c"]) == 0
        out = capsys.readouterr().out
        assert "int64_t" in out
        assert "#include <stdint.h>" in out
