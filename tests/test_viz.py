"""Unit tests for the graph renderers."""

from repro import ConversionOptions, convert_source
from repro.viz.dot import ascii_graph, cfg_to_dot, meta_graph_to_dot

from tests.helpers import LISTING1_SHAPE, LISTING3_SHAPE, SPAWN_WORKERS


class TestCfgDot:
    def test_nodes_and_edges(self):
        r = convert_source(LISTING1_SHAPE)
        dot = cfg_to_dot(r.cfg)
        assert dot.startswith("digraph")
        for bid in r.cfg.blocks:
            assert f"b{bid}" in dot
        assert '[label="T"]' in dot
        assert '[label="F"]' in dot

    def test_barrier_rendered_as_box(self):
        dot = cfg_to_dot(convert_source(LISTING3_SHAPE).cfg)
        assert "shape=box" in dot
        assert "wait" in dot

    def test_spawn_dashed(self):
        dot = cfg_to_dot(convert_source(SPAWN_WORKERS).cfg)
        assert "spawn" in dot
        assert "style=dashed" in dot

    def test_terminal_double_circle(self):
        dot = cfg_to_dot(convert_source(LISTING1_SHAPE).cfg)
        assert "doublecircle" in dot


class TestMetaDot:
    def test_states_and_arcs(self):
        r = convert_source(LISTING1_SHAPE)
        dot = meta_graph_to_dot(r.graph)
        assert dot.count("->") == r.graph.num_arcs()
        assert "penwidth=2" in dot        # start marked
        assert "peripheries=2" in dot     # exit marked

    def test_compressed_barrier_arc_labeled(self):
        r = convert_source(LISTING3_SHAPE, ConversionOptions(compress=True))
        dot = meta_graph_to_dot(r.graph)
        if r.graph.barrier_entry:
            assert "all-at-barrier" in dot

    def test_title_escaped(self):
        r = convert_source(LISTING1_SHAPE)
        dot = meta_graph_to_dot(r.graph, title='say "hi"')
        assert '\\"hi\\"' in dot


class TestAscii:
    def test_every_state_listed(self):
        r = convert_source(LISTING1_SHAPE)
        text = ascii_graph(r.graph)
        assert text.count("ms_") >= r.graph.num_states()
        assert "(start" in text or "start" in text
