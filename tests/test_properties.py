"""Property-based end-to-end testing with randomly generated MIMDC
programs.

A hypothesis strategy builds arbitrary (terminating, division-safe)
SPMD programs; every generated program is converted under each option
set and executed on all three machines, which must agree exactly. This
is the meta-state conversion correctness theorem, sampled.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from hypothesis import assume

from repro import ConversionOptions, convert_source, simulate_mimd, simulate_simd
from repro.core.metastate import MetaStateGraph
from repro.errors import ConversionError

from tests.helpers import run_all_machines, assert_equivalent

#: Keep the sampled state spaces small enough that one example runs in
#: well under a second; programs beyond the cap are rejected by
#: ``assume`` (they exercise no code path the smaller ones miss — the
#: explosion itself is covered by benchmarks/test_state_explosion.py).
SMALL = ConversionOptions(max_meta_states=400)
SMALL_COMPRESS = ConversionOptions(compress=True, max_meta_states=400)
SMALL_SPLIT = ConversionOptions(time_split=True, max_meta_states=400)


def small_machines(src, npes=5, options=SMALL):
    try:
        return run_all_machines(src, npes=npes, options=options)
    except ConversionError:
        assume(False)

VARS = ["a", "b", "c"]
LOOP_VARS = ["i0", "i1"]


@st.composite
def expressions(draw, depth: int = 0) -> str:
    """An int-valued expression over the poly variables. Division is
    kept safe by construction (denominator = |expr| % k + 1)."""
    if depth >= 2:
        leaf = draw(st.sampled_from(["const", "var", "procnum"]))
        if leaf == "const":
            return str(draw(st.integers(min_value=-9, max_value=9)))
        if leaf == "procnum":
            return "procnum"
        return draw(st.sampled_from(VARS))
    kind = draw(st.sampled_from(
        ["leaf", "leaf", "binop", "cmp", "mod", "div", "unary", "ternary"]
    ))
    if kind == "leaf":
        return draw(expressions(depth=2))
    a = draw(expressions(depth=depth + 1))
    b = draw(expressions(depth=depth + 1))
    if kind == "binop":
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return f"({a} {op} {b})"
    if kind == "cmp":
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return f"({a} {op} {b})"
    if kind == "mod":
        k = draw(st.integers(min_value=2, max_value=7))
        return f"({a} % {k})"
    if kind == "div":
        k = draw(st.integers(min_value=2, max_value=7))
        return f"({a} / {k})"
    if kind == "unary":
        op = draw(st.sampled_from(["-", "!", "~"]))
        return f"({op}{a})"
    c = draw(expressions(depth=depth + 1))
    return f"({a} ? {b} : {c})"


@st.composite
def statements(draw, depth: int, loops_used: list, barrier_ok: bool) -> str:
    kinds = ["assign", "assign", "compound"]
    if depth < 2:
        kinds += ["if", "if"]
        if len(loops_used) < len(LOOP_VARS):
            kinds.append("for")
    if barrier_ok and depth == 0:
        kinds.append("wait")
    kind = draw(st.sampled_from(kinds))
    pad = "    " * (depth + 1)
    if kind == "assign":
        var = draw(st.sampled_from(VARS))
        return f"{pad}{var} = {draw(expressions())};"
    if kind == "compound":
        var = draw(st.sampled_from(VARS))
        op = draw(st.sampled_from(["+=", "-=", "*="]))
        return f"{pad}{var} {op} {draw(expressions(depth=1))};"
    if kind == "wait":
        return f"{pad}wait;"
    if kind == "if":
        cond = draw(expressions(depth=1))
        then = draw(blocks(depth + 1, loops_used, barrier_ok=False))
        if draw(st.booleans()):
            other = draw(blocks(depth + 1, loops_used, barrier_ok=False))
            return f"{pad}if ({cond}) {{\n{then}\n{pad}}} else {{\n{other}\n{pad}}}"
        return f"{pad}if ({cond}) {{\n{then}\n{pad}}}"
    # counted for-loop: guaranteed termination
    lv = LOOP_VARS[len(loops_used)]
    loops_used = loops_used + [lv]
    bound = draw(st.integers(min_value=1, max_value=4))
    body = draw(blocks(depth + 1, loops_used, barrier_ok=False))
    return (f"{pad}for ({lv} = 0; {lv} < {bound}; {lv} += 1) {{\n"
            f"{body}\n{pad}}}")


@st.composite
def blocks(draw, depth: int, loops_used: list, barrier_ok: bool) -> str:
    n = draw(st.integers(min_value=1, max_value=3 if depth else 5))
    return "\n".join(
        draw(statements(depth, loops_used, barrier_ok)) for _ in range(n)
    )


@st.composite
def programs(draw) -> str:
    decls = "    poly int a; poly int b; poly int c;\n" \
            "    poly int i0; poly int i1;\n" \
            "    a = procnum; b = procnum % 3; c = 1;"
    body = draw(blocks(0, [], barrier_ok=True))
    ret = draw(expressions(depth=1))
    return f"main() {{\n{decls}\n{body}\n    return ({ret});\n}}\n"


COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestRandomProgramOracle:
    @given(src=programs())
    @settings(max_examples=25, **COMMON_SETTINGS)
    def test_base_conversion_matches_oracle(self, src):
        _, simd, mimd, interp = small_machines(src)
        assert_equivalent(simd, mimd, interp)

    @given(src=programs())
    @settings(max_examples=15, **COMMON_SETTINGS)
    def test_compressed_matches_oracle(self, src):
        _, simd, mimd, _ = small_machines(src, options=SMALL_COMPRESS)
        assert_equivalent(simd, mimd)

    @given(src=programs())
    @settings(max_examples=10, **COMMON_SETTINGS)
    def test_time_split_matches_oracle(self, src):
        _, simd, mimd, _ = small_machines(src, options=SMALL_SPLIT)
        assert_equivalent(simd, mimd)

    @given(src=programs(), npes=st.integers(min_value=1, max_value=9))
    @settings(max_examples=12, **COMMON_SETTINGS)
    def test_any_machine_width(self, src, npes):
        _, simd, mimd, _ = small_machines(src, npes=npes)
        assert_equivalent(simd, mimd)


class TestRandomGraphInvariants:
    @given(src=programs())
    @settings(max_examples=20, **COMMON_SETTINGS)
    def test_graph_invariants(self, src):
        try:
            result = convert_source(src, SMALL)
        except ConversionError:
            assume(False)
        graph: MetaStateGraph = result.graph
        cfg = result.cfg
        graph.verify(valid_blocks=set(cfg.blocks))
        # start = set of MIMD start states
        assert graph.start == frozenset((cfg.entry,))
        for m in graph.states:
            branches = sum(1 for b in m if cfg.blocks[b].is_branch)
            assert len(graph.successors(m)) <= 3 ** branches
            waits = m & graph.barrier_ids
            assert waits in (frozenset(), m)

    @given(src=programs())
    @settings(max_examples=15, **COMMON_SETTINGS)
    def test_compression_dominates(self, src):
        try:
            base = convert_source(src, SMALL)
        except ConversionError:
            assume(False)
        comp = convert_source(src, SMALL_COMPRESS)
        assert comp.graph.num_states() <= base.graph.num_states()
        assert comp.graph.num_states() <= 2 * len(comp.cfg.blocks) + 2

    @given(src=programs())
    @settings(max_examples=12, **COMMON_SETTINGS)
    def test_emitted_program_schedules_verify(self, src):
        from repro.csi.dag import ThreadCode
        from repro.csi.schedule import verify_schedule

        try:
            result = convert_source(src, SMALL)
        except ConversionError:
            assume(False)
        prog = result.simd_program()
        for node in prog.nodes.values():
            for seg in node.segments:
                threads = [
                    ThreadCode.of(bid, result.cfg.blocks[bid].code)
                    for bid in sorted(seg.members)
                    if result.cfg.blocks[bid].code
                ]
                verify_schedule(threads, seg.schedule)


class TestRandomTraceEquivalence:
    @given(src=programs())
    @settings(max_examples=15, **COMMON_SETTINGS)
    def test_control_paths_identical(self, src):
        from repro.analysis.traces import assert_same_paths
        from repro.mimd.machine import MimdMachine
        from repro.simd.machine import SimdMachine

        try:
            result = convert_source(src, SMALL)
        except ConversionError:
            assume(False)
        simd = SimdMachine(npes=5, trace=True).run(
            result.simd_program(), max_steps=200_000
        )
        mimd = MimdMachine(nprocs=5, trace=True).run(
            result.cfg, max_steps=200_000
        )
        assert_same_paths(mimd, simd)


class TestRandomDeterminism:
    @given(src=programs())
    @settings(max_examples=8, **COMMON_SETTINGS)
    def test_conversion_is_deterministic(self, src):
        try:
            a = convert_source(src, SMALL)
        except ConversionError:
            assume(False)
        b = convert_source(src, SMALL)
        assert a.graph.states == b.graph.states
        assert a.graph.table == b.graph.table
        assert a.mpl_text() == b.mpl_text()
