"""Unit tests for multiway branch encoding (section 3.2.3, [Die92a])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConversionError
from repro.hashenc.search import (
    BranchEncoding,
    HashFn,
    encode_branch,
    find_hash,
    key_of_members,
)


class TestKeyEncoding:
    def test_bit_per_block(self):
        assert key_of_members(frozenset((2, 6))) == (1 << 2) | (1 << 6)

    def test_empty(self):
        assert key_of_members(frozenset()) == 0

    def test_wide_blocks(self):
        # Block ids beyond 64 bits: Python ints handle the width.
        assert key_of_members(frozenset((100,))) == 1 << 100


class TestFindHash:
    def test_single_key_is_const(self):
        fn = find_hash([0b100])
        assert fn.kind == "const"
        assert fn.table_size == 1

    def test_listing5_ms0_keys(self):
        """ms_0's successors {2},{6},{2,6}: a small family member must
        separate the aggregates into a <=4-entry table."""
        keys = [key_of_members(frozenset(m)) for m in ((2,), (6,), (2, 6))]
        fn = find_hash(keys)
        assert fn.table_size <= 4
        assert len({fn.apply(k) for k in keys}) == 3

    def test_listing5_ms_2_6_keys(self):
        """The five-case switch of ms_2_6."""
        cases = [(2, 6), (2, 9), (6, 9), (9,), (2, 6, 9)]
        keys = [key_of_members(frozenset(m)) for m in cases]
        fn = find_hash(keys)
        assert fn.table_size <= 16
        assert len({fn.apply(k) for k in keys}) == 5

    def test_injective_always(self):
        keys = [0b0110, 0b1010, 0b1100, 0b0011]
        fn = find_hash(keys)
        assert len({fn.apply(k) for k in keys}) == len(keys)

    def test_dense_sequential_keys(self):
        keys = list(range(1, 9))
        fn = find_hash(keys)
        assert fn.table_size <= 16

    def test_no_keys_raises(self):
        with pytest.raises(ConversionError):
            find_hash([])

    def test_fallback_mod_hash(self):
        # Adversarial keys that defeat the mask family within the table
        # budget still get an injective (division) hash.
        keys = [1 << i | 1 for i in range(3, 40, 7)]
        fn = find_hash(keys)
        hashes = {fn.apply(k) for k in keys}
        assert len(hashes) == len(keys)

    @given(st.sets(st.integers(min_value=1, max_value=2**40), min_size=1,
                   max_size=24))
    @settings(max_examples=100, deadline=None)
    def test_property_injective_and_bounded(self, keyset):
        keys = sorted(keyset)
        fn = find_hash(keys)
        hashes = [fn.apply(k) for k in keys]
        assert len(set(hashes)) == len(keys)
        assert all(0 <= h < fn.table_size for h in hashes)


class TestHashFnRendering:
    def test_c_expressions(self):
        assert HashFn("mask", s=2, mask=3).c_expr() == "((apc >> 2) & 3)"
        assert "~apc" in HashFn("notmask", s=5, mask=3).c_expr()
        assert "^" in HashFn("xor", s=6, mask=15).c_expr()
        assert "%" in HashFn("mod", mod=7).c_expr()
        assert HashFn("const").c_expr() == "0"

    def test_notmask_matches_fixed_width_not(self):
        fn = HashFn("notmask", s=0, mask=0xFF, width=16)
        assert fn.apply(0x0001) == (0xFFFE & 0xFF)

    def test_eval_cost_ordering(self):
        assert HashFn("mask", s=0, mask=1).eval_cost < HashFn(
            "mod", mod=3
        ).eval_cost


class TestBranchEncoding:
    def test_lookup_round_trip(self):
        cases = {0b0010: "a", 0b0100: "b", 0b0110: "c"}
        enc = encode_branch(cases)
        for k, v in cases.items():
            assert enc.lookup(k) == v

    def test_unknown_key_raises(self):
        enc = encode_branch({0b0010: "a", 0b0100: "b"})
        # find a key hashing outside the used entries
        bad_keys = [k for k in range(1, 2**10)
                    if k not in enc.cases]
        for k in bad_keys:
            h = enc.fn.apply(k)
            if h >= len(enc.table) or enc.table[h] is None:
                with pytest.raises(ConversionError):
                    enc.lookup(k)
                return
        pytest.skip("every probe aliased onto a valid entry")

    def test_load_factor(self):
        enc = encode_branch({1: "x", 2: "y", 3: "z", 4: "w"})
        assert 0 < enc.load_factor <= 1.0

    def test_table_size_reported(self):
        enc = encode_branch({1: "x"})
        assert enc.table_size == 1

    @given(st.dictionaries(st.integers(min_value=1, max_value=2**30),
                           st.integers(), min_size=1, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_property_every_case_dispatches(self, cases):
        enc = encode_branch(cases)
        for k, v in cases.items():
            assert enc.lookup(k) == v


class TestRealTransitionTables:
    def test_all_corpus_transition_tables_encode(self):
        from repro import convert_source
        from tests.helpers import CORPUS

        for name, src in CORPUS:
            result = convert_source(src)
            prog = result.simd_program()
            for node in prog.nodes.values():
                if node.encoding is None:
                    continue
                enc = node.encoding
                for key, target in enc.cases.items():
                    assert enc.lookup(key) == target, name


class TestWideKeys:
    """Regression: block ids >= 64 produce keys wider than a machine
    word. Width must be derived from the key set (a fixed 64 makes
    apply() truncate distinct keys into silent collisions)."""

    def test_find_hash_derives_width_past_64(self):
        keys = [key_of_members(frozenset(m))
                for m in ((70,), (85,), (70, 85), (3, 90))]
        fn = find_hash(keys)
        assert fn.width >= 91
        assert len({fn.apply(k) for k in keys}) == len(keys)

    def test_colliding_truncations_stay_distinct(self):
        # These keys are identical in their low 64 bits; a 64-bit
        # truncation would alias all three.
        base = 1 << 5
        keys = [base, base | (1 << 64), base | (1 << 80)]
        fn = find_hash(keys)
        assert len({fn.apply(k) for k in keys}) == 3

    def test_explicit_narrow_width_raises(self):
        keys = [1 << 5, 1 << 70]
        with pytest.raises(ConversionError, match="width"):
            find_hash(keys, width=64)

    def test_encode_branch_round_trips_wide_keys(self):
        cases = {key_of_members(frozenset(m)): i
                 for i, m in enumerate(((66,), (67,), (66, 67), (2, 99)))}
        enc = encode_branch(cases)
        for k, v in cases.items():
            assert enc.lookup(k) == v

    def test_program_with_more_than_64_blocks(self):
        import numpy as np

        from repro import convert_source, simulate_mimd, simulate_simd
        from repro.workloads import barrier_phases

        result = convert_source(barrier_phases(6, n_phases=22))
        assert max(result.cfg.blocks) >= 64
        prog = result.simd_program()
        assert any(
            node.encoding is not None and node.encoding.fn.width > 64
            for node in prog.nodes.values()
        )
        simd = simulate_simd(result, npes=8)
        mimd = simulate_mimd(result, nprocs=8)
        assert np.array_equal(simd.returns, mimd.returns, equal_nan=True)
