"""Integration: the central correctness oracle.

For every corpus program and every option combination, the meta-state
SIMD execution, the interpreter baseline, and the reference MIMD
machine must produce identical per-PE results. This is the paper's
correctness claim — "the meta-state automaton is a SIMD program that
preserves the relative timing properties of MIMD execution" — checked
end to end.
"""

import numpy as np
import pytest

from repro import ConversionOptions

from tests.helpers import (
    CORPUS,
    OPTION_MATRIX,
    assert_equivalent,
    run_all_machines,
)


@pytest.mark.parametrize("name,src", CORPUS)
@pytest.mark.parametrize(
    "options",
    OPTION_MATRIX,
    ids=["base", "compress", "timesplit", "compress+timesplit"],
)
def test_corpus_equivalence(name, src, options):
    result, simd, mimd, interp = run_all_machines(src, npes=8, options=options)
    assert_equivalent(simd, mimd, interp)


@pytest.mark.parametrize("npes", [1, 2, 3, 7, 16, 33])
def test_machine_width_sweep(npes):
    from tests.helpers import LISTING1_RUNNABLE

    _, simd, mimd, interp = run_all_machines(LISTING1_RUNNABLE, npes=npes)
    assert_equivalent(simd, mimd, interp)


@pytest.mark.parametrize("name,src", CORPUS)
def test_partial_activation(name, src):
    if "spawn" in src:
        pytest.skip("spawn corpus entries set their own activation")
    _, simd, mimd, interp = run_all_machines(src, npes=8, active=5)
    assert_equivalent(simd, mimd, interp)


def test_timing_claims_hold_across_corpus():
    """Direction of the paper's performance claims on every workload:
    interpretation costs more control-unit time than MSC, and only the
    interpreter pays per-PE program memory."""
    for name, src in CORPUS:
        result, simd, mimd, interp = run_all_machines(src, npes=8)
        assert interp.cycles > simd.cycles, name
        assert interp.program_bytes_per_pe > 0, name


def test_deterministic_reruns():
    from tests.helpers import KITCHEN_SINK

    _, a, _, _ = run_all_machines(KITCHEN_SINK, npes=8)
    _, b, _, _ = run_all_machines(KITCHEN_SINK, npes=8)
    np.testing.assert_array_equal(a.returns, b.returns)
    assert a.cycles == b.cycles


def test_mono_visible_after_barrier():
    src = """
mono int m;
main() {
    poly int x;
    x = procnum % 2;
    if (x == 0) {
        m = 41;
    } else {
        x = x + 1;
    }
    wait;
    return (m + 1);
}
"""
    _, simd, mimd, interp = run_all_machines(src, npes=8)
    assert_equivalent(simd, mimd, interp)
    assert (simd.returns == 42).all()


def test_cost_model_override_changes_cycles_not_results():
    from repro.ir.instr import CostModel

    from tests.helpers import LISTING1_RUNNABLE

    expensive = ConversionOptions(
        costs=CostModel(globalor_cost=50, dispatch_cost=50)
    )
    _, simd1, mimd1, _ = run_all_machines(LISTING1_RUNNABLE, npes=8)
    _, simd2, mimd2, _ = run_all_machines(
        LISTING1_RUNNABLE, npes=8, options=expensive
    )
    np.testing.assert_array_equal(simd1.returns, simd2.returns)
    assert simd2.cycles > simd1.cycles
