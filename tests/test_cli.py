"""Unit tests for the command-line interface."""

import pytest

from repro.__main__ import main

SRC = """
main() {
    poly int x;
    x = procnum % 3;
    if (x) { do { x = x - 1; } while (x); }
    else   { do { x = x + 2; } while (x - 4); }
    return (x);
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mimdc"
    path.write_text(SRC)
    return str(path)


class TestCompile:
    def test_summary(self, source_file, capsys):
        # -O1 pinned: the meta-state count depends on the opt level and
        # the suite also runs under REPRO_OPT_LEVEL=0 in CI.
        assert main(["compile", source_file, "-O1"]) == 0
        out = capsys.readouterr().out
        assert "meta states: 8" in out

    def test_emit_mpl(self, source_file, capsys):
        assert main(["compile", source_file, "--emit", "mpl"]) == 0
        assert "globalor(pc)" in capsys.readouterr().out

    def test_emit_graph(self, source_file, capsys):
        assert main(["compile", source_file, "--emit", "graph"]) == 0
        assert "ms_0" in capsys.readouterr().out

    def test_emit_dot(self, source_file, capsys):
        assert main(["compile", source_file, "--emit", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_emit_cfg(self, source_file, capsys):
        assert main(["compile", source_file, "--emit", "cfg"]) == 0
        assert "entry: 0" in capsys.readouterr().out

    def test_emit_cfg_dot(self, source_file, capsys):
        assert main(["compile", source_file, "--emit", "cfg-dot"]) == 0
        assert "digraph mimd" in capsys.readouterr().out

    def test_compress_flag(self, source_file, capsys):
        assert main(["compile", source_file, "--compress", "-O1"]) == 0
        out = capsys.readouterr().out
        assert "meta states: 3" in out

    def test_opt_level_flag(self, source_file, capsys):
        for level in ("0", "1", "2"):
            assert main(["compile", source_file, "-O", level,
                         "--verify-passes"]) == 0
            capsys.readouterr()

    def test_emit_dot_opt(self, source_file, capsys):
        assert main(["compile", source_file, "--emit", "dot-opt"]) == 0
        assert "digraph straightened" in capsys.readouterr().out

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(SRC))
        assert main(["compile", "-"]) == 0


class TestRun:
    def test_run_with_check(self, source_file, capsys):
        assert main(["run", source_file, "--npes", "8", "--check"]) == 0
        out = capsys.readouterr().out
        assert "SIMD == MIMD reference" in out
        assert "cycles:" in out

    def test_run_active(self, source_file, capsys):
        assert main(["run", source_file, "--npes", "8", "--active", "4"]) == 0


class TestCompare:
    def test_compare(self, source_file, capsys):
        assert main(["compare", source_file, "--npes", "8"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out


BARRIER_SRC = """
main() {
    poly int x;
    x = procnum % 2;
    if (x) { do { x = x - 1; } while (x); }
    wait;
    return (x);
}
"""

IMBALANCED_SRC = """
main() {
    poly int x; poly int y;
    x = procnum % 2;
    y = procnum;
    if (x) { y = y + 1; }
    else   { y = y * 3 + 1; y = y * 3 + 2; y = y * 3 + 3; y = y * 3 + 4;
             y = y * 3 + 5; y = y * 3 + 6; y = y * 3 + 7; y = y * 3 + 8; }
    return (y);
}
"""


def _report(tmp_path, args_list):
    """Run main() with --report-json and return the parsed report."""
    import json

    path = tmp_path / "report.json"
    assert main(args_list + ["--report-json", str(path)]) == 0
    return json.loads(path.read_text())


class TestOptionPlumbing:
    """The flags `_options()` used to silently drop."""

    def test_max_parked_flag(self, tmp_path, capsys):
        path = tmp_path / "barrier.mimdc"
        path.write_text(BARRIER_SRC)
        assert main(["compile", str(path)]) == 0
        capsys.readouterr()
        assert main(["compile", str(path), "--max-parked", "0"]) == 2
        assert "parked" in capsys.readouterr().err

    def test_split_delta_flag(self, tmp_path):
        path = tmp_path / "imb.mimdc"
        path.write_text(IMBALANCED_SRC)
        cold = _report(tmp_path, ["compile", str(path), "--time-split",
                                  "--compress"])
        conv = [s for s in cold["stages"] if s["name"] == "convert"][0]
        assert conv["counters"]["restarts"] >= 1
        huge = _report(tmp_path, ["compile", str(path), "--time-split",
                                  "--compress", "--split-delta", "10000"])
        conv = [s for s in huge["stages"] if s["name"] == "convert"][0]
        assert conv["counters"]["restarts"] == 0

    def test_split_percent_flag(self, tmp_path):
        path = tmp_path / "imb.mimdc"
        path.write_text(IMBALANCED_SRC)
        rep = _report(tmp_path, ["compile", str(path), "--time-split",
                                 "--compress", "--split-percent", "0"])
        conv = [s for s in rep["stages"] if s["name"] == "convert"][0]
        assert conv["counters"]["restarts"] == 0

    def test_no_plans_flag(self, source_file, capsys):
        assert main(["run", source_file, "--npes", "8", "--check",
                     "--no-plans"]) == 0
        assert "SIMD == MIMD reference" in capsys.readouterr().out

    def test_no_plans_compare(self, source_file, capsys):
        assert main(["compare", source_file, "--npes", "8",
                     "--no-plans"]) == 0
        assert "speedup" in capsys.readouterr().out


class TestTimingsAndCache:
    def test_timings_table(self, source_file, capsys):
        assert main(["compile", source_file, "-O1", "--timings"]) == 0
        out = capsys.readouterr().out
        for stage in ("parse", "sema", "lower", "opt-cfg", "convert",
                      "opt-meta", "encode", "plan"):
            assert stage in out
        # Per-pass rows appear indented under their opt stage.
        for pass_name in ("straighten", "prune", "renumber"):
            assert f"  {pass_name}" in out
        assert "total" in out

    def test_report_json(self, source_file, tmp_path):
        rep = _report(tmp_path, ["compile", source_file])
        assert [s["name"] for s in rep["stages"]] == [
            "parse", "sema", "lower", "opt-cfg", "convert", "opt-meta",
            "encode", "plan", "kernels", "native"
        ]
        opt_cfg = [s for s in rep["stages"] if s["name"] == "opt-cfg"][0]
        assert [p["name"] for p in opt_cfg["passes"]]
        assert rep["cache"] == "miss"

    def test_warm_cli_compile_hits_cache(self, source_file, tmp_path):
        cold = _report(tmp_path, ["compile", source_file])
        warm = _report(tmp_path, ["compile", source_file])
        assert cold["cache"] == "miss"
        assert warm["cache"] == "hit"
        assert all(s["cached"] for s in warm["stages"])

    def test_no_cache_flag(self, source_file, tmp_path):
        rep = _report(tmp_path, ["compile", source_file, "--no-cache"])
        assert rep["cache"] == "off"

    def test_cache_dir_flag(self, source_file, tmp_path):
        cdir = tmp_path / "explicit-cache"
        assert main(["compile", source_file, "--cache-dir", str(cdir)]) == 0
        assert list(cdir.rglob("*.pkl"))

    def test_run_warm_hits_cache(self, source_file, tmp_path, capsys):
        assert main(["run", source_file, "--npes", "8"]) == 0
        capsys.readouterr()
        rep = _report(tmp_path, ["run", source_file, "--npes", "8"])
        assert rep["cache"] == "hit"

    def test_cache_subcommand(self, source_file, tmp_path, capsys):
        assert main(["compile", source_file]) == 0
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "dir"]) == 0


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent/x.mimdc"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_source(self, tmp_path, capsys):
        path = tmp_path / "bad.mimdc"
        path.write_text("main() { x = ; }")
        assert main(["compile", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_state_cap(self, tmp_path, capsys):
        path = tmp_path / "prog.mimdc"
        path.write_text(SRC)
        assert main(["compile", str(path), "--max-meta-states", "2"]) == 2
