"""Unit tests for the command-line interface."""

import pytest

from repro.__main__ import main

SRC = """
main() {
    poly int x;
    x = procnum % 3;
    if (x) { do { x = x - 1; } while (x); }
    else   { do { x = x + 2; } while (x - 4); }
    return (x);
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mimdc"
    path.write_text(SRC)
    return str(path)


class TestCompile:
    def test_summary(self, source_file, capsys):
        assert main(["compile", source_file]) == 0
        out = capsys.readouterr().out
        assert "meta states: 8" in out

    def test_emit_mpl(self, source_file, capsys):
        assert main(["compile", source_file, "--emit", "mpl"]) == 0
        assert "globalor(pc)" in capsys.readouterr().out

    def test_emit_graph(self, source_file, capsys):
        assert main(["compile", source_file, "--emit", "graph"]) == 0
        assert "ms_0" in capsys.readouterr().out

    def test_emit_dot(self, source_file, capsys):
        assert main(["compile", source_file, "--emit", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_emit_cfg(self, source_file, capsys):
        assert main(["compile", source_file, "--emit", "cfg"]) == 0
        assert "entry: 0" in capsys.readouterr().out

    def test_emit_cfg_dot(self, source_file, capsys):
        assert main(["compile", source_file, "--emit", "cfg-dot"]) == 0
        assert "digraph mimd" in capsys.readouterr().out

    def test_compress_flag(self, source_file, capsys):
        assert main(["compile", source_file, "--compress"]) == 0
        out = capsys.readouterr().out
        assert "meta states: 3" in out

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(SRC))
        assert main(["compile", "-"]) == 0


class TestRun:
    def test_run_with_check(self, source_file, capsys):
        assert main(["run", source_file, "--npes", "8", "--check"]) == 0
        out = capsys.readouterr().out
        assert "SIMD == MIMD reference" in out
        assert "cycles:" in out

    def test_run_active(self, source_file, capsys):
        assert main(["run", source_file, "--npes", "8", "--active", "4"]) == 0


class TestCompare:
    def test_compare(self, source_file, capsys):
        assert main(["compare", source_file, "--npes", "8"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent/x.mimdc"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_source(self, tmp_path, capsys):
        path = tmp_path / "bad.mimdc"
        path.write_text("main() { x = ; }")
        assert main(["compile", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_state_cap(self, tmp_path, capsys):
        path = tmp_path / "prog.mimdc"
        path.write_text(SRC)
        assert main(["compile", str(path), "--max-meta-states", "2"]) == 2
