"""Unit tests for the flattener and the interpreter baseline (section 1.1)."""

import numpy as np
import pytest

from repro import convert_source
from repro.errors import MachineError
from repro.ir.block import CondBr
from repro.ir.lowering import lower_program
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.mimd.flatten import INSTR_BYTES, JF, JMP, RET, flatten_cfg
from repro.mimd.interp import InterpreterMachine

from tests.helpers import CORPUS, LISTING1_RUNNABLE


def lower(src: str):
    return lower_program(analyze(parse(src)))


class TestFlatten:
    def test_entry_is_entry_block_start(self):
        cfg = lower(LISTING1_RUNNABLE)
        flat = flatten_cfg(cfg)
        assert flat.entry == flat.block_start[cfg.entry]

    def test_every_block_placed(self):
        cfg = lower(LISTING1_RUNNABLE)
        flat = flatten_cfg(cfg)
        assert set(flat.block_start) == set(cfg.blocks)

    def test_body_instructions_preserved_in_order(self):
        cfg = lower(LISTING1_RUNNABLE)
        flat = flatten_cfg(cfg)
        for bid, blk in cfg.blocks.items():
            start = flat.block_start[bid]
            got = [fi.instr for fi in flat.code[start:start + len(blk.code)]]
            assert got == blk.code

    def test_condbr_emits_jf_plus_jmp(self):
        cfg = lower(LISTING1_RUNNABLE)
        flat = flatten_cfg(cfg)
        for bid, blk in cfg.blocks.items():
            if isinstance(blk.terminator, CondBr):
                pos = flat.block_start[bid] + len(blk.code)
                assert flat.code[pos].ctrl == JF
                assert flat.code[pos + 1].ctrl == JMP
                assert flat.code[pos].arg == flat.block_start[
                    blk.terminator.on_false]
                assert flat.code[pos + 1].arg == flat.block_start[
                    blk.terminator.on_true]

    def test_memory_footprint(self):
        cfg = lower(LISTING1_RUNNABLE)
        flat = flatten_cfg(cfg)
        assert flat.memory_bytes_per_pe() == len(flat.code) * INSTR_BYTES

    def test_render(self):
        flat = flatten_cfg(lower("main() { return (0); }"))
        text = str(flat)
        assert RET in text

    def test_corpus_flattens(self):
        for name, src in CORPUS:
            flat = flatten_cfg(lower(src))
            assert len(flat.code) > 0, name


class TestInterpreter:
    def run(self, src, npes=8, active=None, **kw):
        flat = flatten_cfg(lower(src))
        return InterpreterMachine(npes=npes, **kw).run(flat, active=active)

    def test_simple_program(self):
        res = self.run("main() { poly int x; x = 5 + procnum; return (x); }",
                       npes=4)
        np.testing.assert_array_equal(res.returns, [5, 6, 7, 8])

    def test_divergent_pcs_serialize(self):
        res = self.run(LISTING1_RUNNABLE, npes=9)
        assert res.steps > 0
        assert res.cycles > res.execute_cycles  # fetch/decode overhead real

    def test_overhead_fraction_positive(self):
        res = self.run(LISTING1_RUNNABLE)
        assert 0 < res.overhead_fraction < 1

    def test_fetch_decode_charged_every_step(self):
        res = self.run("main() { return (0); }", npes=2)
        costs_per_step = 2 + 2 + 1  # fetch + decode + loop (defaults)
        assert res.fetch_decode_cycles == res.steps * costs_per_step

    def test_program_memory_replicated(self):
        res = self.run(LISTING1_RUNNABLE)
        assert res.program_bytes_per_pe > 0

    def test_divergence_lowers_utilization(self):
        uniform = self.run("main() { poly int x; x = procnum * 3; return (x); }")
        divergent = self.run(LISTING1_RUNNABLE)
        assert divergent.utilization < uniform.utilization

    def test_barrier(self):
        res = self.run("""
main() {
    poly int x;
    if (procnum % 2) { x = 1; } else { x = 2; x = x + 1; x = x - 1; }
    wait;
    return (x);
}
""", npes=4)
        np.testing.assert_array_equal(res.returns, [2, 1, 2, 1])

    def test_spawn_halt(self):
        res = self.run("""
main() {
    poly int x;
    x = procnum;
    spawn(w);
    return (x);
w:  x = 50; halt;
}
""", npes=8, active=4)
        np.testing.assert_array_equal(res.returns[:4], [0, 1, 2, 3])

    def test_step_budget(self):
        with pytest.raises(MachineError, match="exceeded"):
            self.run("main() { poly int x; do { x=1; } while (x); return (x); }",
                     npes=1)

    def test_deadlock_detected(self):
        # One PE returns before the barrier; the machine releases the
        # rest (live-PE rule) — so craft a real deadlock: halt leaves no
        # live PEs... actually halting everyone just ends execution.
        # A genuine deadlock needs waiting PEs with no progress: not
        # constructible from the language (wait releases when all live
        # PEs wait). Verify the release rule instead.
        res = self.run("""
main() {
    if (procnum == 0) { return (1); }
    wait;
    return (2);
}
""", npes=3)
        np.testing.assert_array_equal(res.returns, [1, 2, 2])

    def test_matches_oracle_on_corpus(self):
        from repro import simulate_mimd

        for name, src in CORPUS:
            result = convert_source(src)
            flat = flatten_cfg(result.cfg)
            interp = InterpreterMachine(npes=6).run(flat, max_steps=500_000)
            mimd = simulate_mimd(result, nprocs=6, max_steps=500_000)
            np.testing.assert_array_equal(
                interp.returns, mimd.returns, err_msg=name
            )
