"""Scalar vs vectorized semantics: the two machines must agree exactly.

Property-based: for random operand pairs, the scalar helper
(:mod:`repro.ir.semantics`, used by the MIMD machine) and the vector
helper (:mod:`repro.simd.vecops`, used by the SIMD machines) must
produce identical results — this equivalence is what makes the
cross-machine oracle exact.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.ir import semantics
from repro.ir.instr import BINARY_OPS, UNARY_OPS, Instr, Op
from repro.simd import vecops

# Operands that stay well inside int64 when combined.
ints = st.integers(min_value=-10**6, max_value=10**6)
floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   width=64).map(lambda x: float(np.float64(x)))

INT_ONLY = {Op.IDIV, Op.MOD, Op.BAND, Op.BOR, Op.BXOR, Op.SHL, Op.SHR}


def vec_binary(op: Op, a: float, b: float) -> float:
    st_ = vecops.PeState(1, 1, 0)
    idx = np.array([0])
    st_.stack[0, 0] = a
    st_.stack[1, 0] = b
    st_.sp[:] = 2
    vecops.exec_instr(Instr(op), idx, st_)
    return float(st_.stack[0, 0])


def vec_unary(op: Op, a: float) -> float:
    st_ = vecops.PeState(1, 1, 0)
    idx = np.array([0])
    st_.stack[0, 0] = a
    st_.sp[:] = 1
    vecops.exec_instr(Instr(op), idx, st_)
    return float(st_.stack[0, 0])


class TestScalarVectorAgreement:
    @pytest.mark.parametrize("op", sorted(BINARY_OPS, key=lambda o: o.value))
    @given(a=ints, b=ints)
    @settings(max_examples=60, deadline=None)
    def test_binary_int_operands(self, op, a, b):
        if b == 0 and op in (Op.DIV, Op.IDIV, Op.MOD):
            return
        scalar = semantics.binary(op, float(a), float(b))
        vector = vec_binary(op, float(a), float(b))
        assert scalar == vector

    @pytest.mark.parametrize(
        "op", sorted(BINARY_OPS - INT_ONLY, key=lambda o: o.value)
    )
    @given(a=floats, b=floats)
    @settings(max_examples=40, deadline=None)
    def test_binary_float_operands(self, op, a, b):
        if b == 0 and op is Op.DIV:
            return
        assert semantics.binary(op, a, b) == vec_binary(op, a, b)

    @pytest.mark.parametrize("op", sorted(UNARY_OPS, key=lambda o: o.value))
    @given(a=floats)
    @settings(max_examples=40, deadline=None)
    def test_unary(self, op, a):
        assert semantics.unary(op, a) == vec_unary(op, a)


class TestCSemantics:
    """Spot checks of the C-style corner rules."""

    def test_truncating_division_toward_zero(self):
        assert semantics.binary(Op.IDIV, -7.0, 2.0) == -3.0
        assert semantics.binary(Op.IDIV, 7.0, -2.0) == -3.0
        assert semantics.binary(Op.IDIV, -7.0, -2.0) == 3.0

    def test_mod_sign_follows_dividend(self):
        assert semantics.binary(Op.MOD, -7.0, 2.0) == -1.0
        assert semantics.binary(Op.MOD, 7.0, -2.0) == 1.0

    def test_division_identity(self):
        for a in (-9, -1, 0, 5, 13):
            for b in (-4, -1, 1, 3):
                q = semantics.binary(Op.IDIV, float(a), float(b))
                r = semantics.binary(Op.MOD, float(a), float(b))
                assert q * b + r == a

    def test_divide_by_zero_raises(self):
        with pytest.raises(MachineError):
            semantics.binary(Op.IDIV, 1.0, 0.0)
        with pytest.raises(MachineError):
            semantics.binary(Op.DIV, 1.0, 0.0)
        with pytest.raises(MachineError):
            vec_binary(Op.MOD, 1.0, 0.0)

    def test_logical_ops_normalize(self):
        assert semantics.binary(Op.LAND, 5.0, -3.0) == 1.0
        assert semantics.binary(Op.LAND, 5.0, 0.0) == 0.0
        assert semantics.binary(Op.LOR, 0.0, 0.0) == 0.0
        assert semantics.unary(Op.NOT, 0.0) == 1.0
        assert semantics.unary(Op.NOT, 2.5) == 0.0

    def test_shift_count_masked(self):
        assert semantics.binary(Op.SHL, 1.0, 64.0) == 1.0  # 64 & 63 == 0
        assert semantics.binary(Op.SHL, 1.0, 3.0) == 8.0

    def test_trunc(self):
        assert semantics.unary(Op.TRUNC, 2.9) == 2.0
        assert semantics.unary(Op.TRUNC, -2.9) == -2.0

    def test_bnot(self):
        assert semantics.binary(Op.BXOR, 12.0, 10.0) == 6.0
        assert semantics.unary(Op.BNOT, 0.0) == -1.0


class TestVectorStackOps:
    def test_sel(self):
        st_ = vecops.PeState(3, 1, 0)
        idx = np.arange(3)
        st_.stack[0] = [1, 0, 2]   # c
        st_.stack[1] = [10, 10, 10]  # a
        st_.stack[2] = [20, 20, 20]  # b
        st_.sp[:] = 3
        vecops.exec_instr(Instr(Op.SEL), idx, st_)
        np.testing.assert_array_equal(st_.stack[0], [10, 20, 10])
        assert (st_.sp == 1).all()

    def test_dup_pop(self):
        st_ = vecops.PeState(2, 1, 0)
        idx = np.arange(2)
        vecops.exec_instr(Instr(Op.PUSH, 7), idx, st_)
        vecops.exec_instr(Instr(Op.DUP), idx, st_)
        assert (st_.sp == 2).all()
        vecops.exec_instr(Instr(Op.POP, 2), idx, st_)
        assert (st_.sp == 0).all()

    def test_ldr_gather(self):
        st_ = vecops.PeState(4, 1, 0)
        idx = np.arange(4)
        st_.poly[0] = [100, 200, 300, 400]
        vecops.exec_instr(Instr(Op.PROCNUM), idx, st_)
        vecops.exec_instr(Instr(Op.PUSH, 1), idx, st_)
        vecops.exec_instr(Instr(Op.ADD), idx, st_)
        vecops.exec_instr(Instr(Op.PUSH, 4), idx, st_)
        vecops.exec_instr(Instr(Op.MOD), idx, st_)
        vecops.exec_instr(Instr(Op.LDR, 0), idx, st_)
        np.testing.assert_array_equal(st_.stack[0], [200, 300, 400, 100])

    def test_ldr_out_of_range_raises(self):
        st_ = vecops.PeState(2, 1, 0)
        idx = np.arange(2)
        vecops.exec_instr(Instr(Op.PUSH, 9), idx, st_)
        with pytest.raises(MachineError):
            vecops.exec_instr(Instr(Op.LDR, 0), idx, st_)

    def test_str_conflict_highest_pe_wins(self):
        st_ = vecops.PeState(3, 1, 0)
        idx = np.arange(3)
        vecops.exec_instr(Instr(Op.PROCNUM), idx, st_)  # value = pid
        vecops.exec_instr(Instr(Op.PUSH, 0), idx, st_)  # all target PE 0
        vecops.exec_instr(Instr(Op.STR, 0), idx, st_)
        assert st_.poly[0, 0] == 2.0

    def test_stm_broadcast_highest_pe_wins(self):
        st_ = vecops.PeState(3, 0, 1)
        idx = np.arange(3)
        vecops.exec_instr(Instr(Op.PROCNUM), idx, st_)
        vecops.exec_instr(Instr(Op.STM, 0), idx, st_)
        assert st_.mono[0] == 2.0

    def test_stack_underflow_raises(self):
        st_ = vecops.PeState(1, 1, 0)
        with pytest.raises(MachineError):
            vecops.exec_instr(Instr(Op.ADD), np.array([0]), st_)

    def test_stack_overflow_raises(self):
        st_ = vecops.PeState(1, 1, 0, stack_depth=2)
        idx = np.array([0])
        vecops.exec_instr(Instr(Op.PUSH, 1), idx, st_)
        vecops.exec_instr(Instr(Op.PUSH, 1), idx, st_)
        with pytest.raises(MachineError):
            vecops.exec_instr(Instr(Op.PUSH, 1), idx, st_)

    def test_rpush_rpop_round_trip(self):
        st_ = vecops.PeState(2, 1, 0)
        idx = np.arange(2)
        vecops.exec_instr(Instr(Op.RPUSH, 42), idx, st_)
        vecops.exec_instr(Instr(Op.RPOP), idx, st_)
        np.testing.assert_array_equal(st_.stack[0], [42, 42])

    def test_rpop_underflow_raises(self):
        st_ = vecops.PeState(1, 1, 0)
        with pytest.raises(MachineError):
            vecops.exec_instr(Instr(Op.RPOP), np.array([0]), st_)

    def test_empty_index_set_is_noop(self):
        st_ = vecops.PeState(2, 1, 0)
        vecops.exec_instr(Instr(Op.ADD), np.array([], dtype=np.int64), st_)
        assert (st_.sp == 0).all()

    def test_disabled_pes_untouched(self):
        st_ = vecops.PeState(4, 1, 0)
        idx = np.array([1, 3])
        vecops.exec_instr(Instr(Op.PUSH, 5), idx, st_)
        np.testing.assert_array_equal(st_.sp, [0, 1, 0, 1])
        np.testing.assert_array_equal(st_.stack[0], [0, 5, 0, 5])
