"""Documentation and example hygiene: the README's Python samples run,
and every example script executes cleanly."""

import pathlib
import re
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _paper_opt_level(monkeypatch):
    """README samples and example scripts demonstrate (and some assert)
    the default pipeline's shapes — pin the paper's level (-O1) so an
    external REPRO_OPT_LEVEL (the CI -O0 matrix leg) cannot change
    them. Subprocesses inherit the patched environment."""
    monkeypatch.setenv("REPRO_OPT_LEVEL", "1")


class TestReadmeSamples:
    def python_blocks(self):
        text = (ROOT / "README.md").read_text()
        return re.findall(r"```python\n(.*?)```", text, re.S)

    def test_readme_has_python_samples(self):
        assert self.python_blocks()

    def test_samples_execute(self):
        # Blocks share one namespace, reading top to bottom like a reader
        # following along.
        ns: dict = {}
        for block in self.python_blocks():
            exec(compile(block, "<README>", "exec"), ns)

    def test_shell_examples_name_real_files(self):
        text = (ROOT / "README.md").read_text()
        for path in re.findall(r"python (examples/\S+\.py)", text):
            assert (ROOT / path).exists(), path

    def test_docs_exist(self):
        for doc in ("docs/language.md", "docs/internals.md",
                    "DESIGN.md", "EXPERIMENTS.md"):
            assert (ROOT / doc).exists(), doc


class TestModuleDocstrings:
    def test_every_module_documented(self):
        missing = []
        for path in (ROOT / "src" / "repro").rglob("*.py"):
            head = path.read_text().lstrip()
            if not head.startswith(('"""', "'''")):
                missing.append(str(path))
        assert not missing, missing


EXAMPLES = sorted(
    p.name for p in (ROOT / "examples").glob("*.py")
)


class TestExamples:
    @pytest.mark.parametrize("name", EXAMPLES)
    def test_example_runs(self, name):
        proc = subprocess.run(
            [sys.executable, str(ROOT / "examples" / name)],
            capture_output=True,
            text=True,
            timeout=240,
            cwd=str(ROOT),
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.strip(), "example printed nothing"
