"""Lazy meta-state conversion: the incremental ConversionEngine, the
LazyProgram miss-handler, and their differential contract against
eager compilation.

The contract has two tiers (docs/internals.md section 14):

- *cold* lazy runs are result-identical to the MIMD oracle (returns and
  memory), but on barrier-parking programs a state's first-visit table
  row can have fewer cases than the eager parked fixpoint row, so
  transition-cycle accounting may differ;
- once the parked fixpoint over the visited region is reached (any
  *warm* run), every counter is bit-identical to the eager compile laid
  out with the trivial (single-state-chain) layout — the layout a
  partial automaton is constrained to.
"""

import warnings

import numpy as np
import pytest

from repro import ConversionOptions, convert_source, simulate_mimd, simulate_simd
from repro import workloads
from repro.codegen.emit import encode_program
from repro.core.convert import (
    ConversionEngine,
    ConvertOptions,
    _ConvertMemo,
    candidate_unions,
    convert,
)
from repro.errors import ConversionError
from repro.ir.lowering import lower_program
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.opt.meta_passes import StraightenedGraph
from repro.simd.machine import SimdMachine

from tests.helpers import LISTING3_SHAPE, assert_equivalent

NPES = 8


def lower(src: str):
    return lower_program(analyze(parse(src)))


def _active(name: str):
    # spawn_waves needs free PEs for its workers (tests/test_workloads).
    return 4 if name == "spawn_waves" else None


def _bit_identical(a, b) -> None:
    assert a.cycles == b.cycles
    assert a.body_cycles == b.body_cycles
    assert a.transition_cycles == b.transition_cycles
    assert a.enabled_pe_cycles == b.enabled_pe_cycles
    assert a.meta_transitions == b.meta_transitions
    assert a.node_visits == b.node_visits
    assert a.backend_used == b.backend_used
    np.testing.assert_array_equal(a.returns, b.returns)


# ----------------------------------------------------------------------
# Warm lazy vs eager at the trivial layout: full bit-identity
# ----------------------------------------------------------------------

class TestWarmDifferential:
    @pytest.mark.parametrize("compress", [False, True],
                             ids=["plain", "compress"])
    @pytest.mark.parametrize("name", sorted(workloads.STANDARD))
    def test_warm_lazy_matches_eager_trivial_layout(self, name, compress):
        src = workloads.STANDARD[name]()
        active = _active(name)
        opts = ConversionOptions(compress=compress, lazy=False)
        eager = convert_source(src, opts, cache=False)
        # The twin: same CFG and meta graph, single-state chain layout —
        # exactly the layout lazy materialization is constrained to.
        twin = encode_program(eager.cfg,
                              StraightenedGraph.trivial(eager.graph),
                              costs=opts.costs, use_csi=opts.use_csi)
        lazy = convert_source(src, ConversionOptions(compress=compress,
                                                     lazy=True), cache=False)
        # Warm the manager: one run reaches the parked fixpoint over
        # the visited region, after which accounting is exact.
        simulate_simd(lazy, NPES, active=active, backend="interp")
        for backend in ("kernels", "kernels-mt"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                machine = SimdMachine(NPES, costs=opts.costs,
                                      backend=backend, shards=2)
                ref = machine.run(twin, active=active)
                got = simulate_simd(lazy, NPES, active=active,
                                    backend=backend, shards=2)
            _bit_identical(ref, got)


# ----------------------------------------------------------------------
# Cold lazy vs the MIMD oracle: result identity
# ----------------------------------------------------------------------

class TestColdOracle:
    @pytest.mark.parametrize("name", sorted(workloads.STANDARD))
    def test_cold_lazy_matches_mimd(self, name):
        src = workloads.STANDARD[name]()
        active = _active(name)
        lazy = convert_source(src, ConversionOptions(lazy=True), cache=False)
        simd = simulate_simd(lazy, NPES, active=active)
        mimd = simulate_mimd(lazy, nprocs=NPES, active=active)
        assert_equivalent(simd, mimd)

    def test_lazy_result_has_no_simd_program(self):
        lazy = convert_source(workloads.divergent_loops(3),
                              ConversionOptions(lazy=True), cache=False)
        with pytest.raises(ConversionError):
            lazy.simd_program()

    def test_lazy_exec_stats_recorded(self):
        lazy = convert_source(workloads.divergent_loops(3),
                              ConversionOptions(lazy=True), cache=False)
        simulate_simd(lazy, NPES)
        rec = next(r for r in lazy.report.records if r.name == "lazy-exec")
        assert rec.counters["lazy_materialized"] > 0
        assert (rec.counters["lazy_materialized"]
                <= rec.counters["lazy_discovered"])


# ----------------------------------------------------------------------
# Explosion workloads: eager aborts, lazy runs
# ----------------------------------------------------------------------

class TestExplosionWorkloads:
    @pytest.mark.parametrize("name", sorted(workloads.EXPLOSION))
    def test_eager_conversion_explodes(self, name):
        src = workloads.EXPLOSION[name]()
        with pytest.raises(ConversionError):
            convert_source(src, ConversionOptions(lazy=False), cache=False)

    @pytest.mark.parametrize("name", sorted(workloads.EXPLOSION))
    def test_lazy_matches_mimd_oracle(self, name):
        src = workloads.EXPLOSION[name]()
        lazy = convert_source(src, ConversionOptions(lazy=True), cache=False)
        simd = simulate_simd(lazy, NPES)
        mimd = simulate_mimd(lazy, nprocs=NPES)
        assert_equivalent(simd, mimd)
        stats = lazy.lazy_program().stats()
        # The point of laziness: far fewer states materialized than
        # discovered (the frontier alone is orders of magnitude wider).
        assert stats["lazy_materialized"] * 10 < stats["lazy_discovered"]
        # The high-water mark is an observed peak, not the configured
        # cap (which is 0 here — unbounded).
        assert stats["lazy_max_resident"] >= stats["lazy_resident"] > 0

    def test_bounded_residency_is_bit_identical(self):
        src = workloads.branch_tree(6)
        unbounded = convert_source(src, ConversionOptions(lazy=True),
                                   cache=False)
        bounded = convert_source(
            src, ConversionOptions(lazy=True, max_resident_meta=4),
            cache=False)
        ref = simulate_simd(unbounded, NPES)
        got = simulate_simd(bounded, NPES)
        _bit_identical(ref, got)
        stats = bounded.lazy_program().stats()
        assert stats["lazy_evictions"] > 0
        assert stats["lazy_resident"] <= 4
        assert stats["lazy_max_resident"] >= stats["lazy_resident"]
        assert stats["lazy_max_resident"] <= 4

    def test_eviction_rerun_stays_identical(self):
        # Deterministic re-expansion: a second run over an LRU-thrashed
        # manager re-materializes evicted states and must not drift.
        src = workloads.random_walks(12)
        lazy = convert_source(
            src, ConversionOptions(lazy=True, max_resident_meta=2),
            cache=False)
        first = simulate_simd(lazy, NPES)
        second = simulate_simd(lazy, NPES)
        _bit_identical(first, second)
        assert lazy.lazy_program().stats()["lazy_evictions"] > 0


# ----------------------------------------------------------------------
# ConversionEngine unit behaviour
# ----------------------------------------------------------------------

class TestConversionEngine:
    def test_drain_equals_eager_convert(self):
        cfg = lower(workloads.barrier_phases(3))
        engine = ConversionEngine(cfg)
        drained = engine.drain()
        eager = convert(lower(workloads.barrier_phases(3)))
        assert drained.table == eager.table
        assert drained.parked_possible == eager.parked_possible
        assert drained.can_exit == eager.can_exit

    def test_on_demand_expansion_converges_to_fixpoint(self):
        cfg = lower(workloads.spawn_waves(2))
        engine = ConversionEngine(cfg)
        dirtied = set()
        # BFS the whole graph through ensure(), the way the runtime
        # would; collect every stale-row notification on the way.
        seen = {engine.graph.start}
        frontier = [engine.graph.start]
        while frontier:
            m = frontier.pop()
            engine.ensure(m)
            dirtied |= engine.take_dirty()
            for s in engine.graph.successors(m):
                if s not in seen:
                    seen.add(s)
                    frontier.append(s)
        # Parked growth must have stale'd at least one expanded row on
        # a spawn/barrier program...
        assert dirtied
        # ...and re-ensuring every dirtied state leaves the graph at
        # the same fixpoint eager conversion reaches over these states.
        for m in dirtied:
            engine.ensure(m)
        eager = convert(lower(workloads.spawn_waves(2)))
        for m in seen:
            assert engine.graph.table[m] == eager.table[m]

    def test_fresh_tracks_parked_growth(self):
        cfg = lower(LISTING3_SHAPE)
        engine = ConversionEngine(cfg)
        start = engine.graph.start
        assert not engine.fresh(start)
        engine.ensure(start)
        assert engine.fresh(start)

    def test_expand_unregistered_state_raises(self):
        cfg = lower(LISTING3_SHAPE)
        engine = ConversionEngine(cfg)
        with pytest.raises(ConversionError):
            engine.expand(frozenset({999}))


# ----------------------------------------------------------------------
# candidate_unions / _ConvertMemo edge cases
# ----------------------------------------------------------------------

class TestCandidateUnionEdges:
    def test_empty_members_yield_single_empty_union(self):
        cfg = lower(LISTING3_SHAPE)
        assert candidate_unions(cfg, frozenset(), False) == {frozenset()}
        assert candidate_unions(cfg, frozenset(), True) == {frozenset()}

    def test_all_terminal_members_union_to_empty(self):
        cfg = lower("main() { poly int x; return (x); }")
        terminal = frozenset(
            b.bid for b in cfg.blocks.values() if b.is_terminal
        )
        assert candidate_unions(cfg, terminal, False) == {frozenset()}

    def test_memo_matches_uncached_and_caches(self):
        cfg = lower(workloads.divergent_loops(3))
        memo = _ConvertMemo(cfg)
        members = frozenset({cfg.entry})
        for compress in (False, True):
            assert (memo.unions(members, compress)
                    == candidate_unions(cfg, members, compress))
        # Cached per (members, compress): same object back.
        assert memo.unions(members, False) is memo.unions(members, False)
        assert memo.unions(members, False) is not memo.unions(members, True)

    def test_parked_cap_boundary(self):
        cfg = lower(LISTING3_SHAPE)
        # One barrier block parked: cap 1 is exactly enough...
        convert(cfg, ConvertOptions(max_parked=1))
        # ...and cap 0 is one short.
        with pytest.raises(ConversionError, match="parked"):
            convert(lower(LISTING3_SHAPE), ConvertOptions(max_parked=0))
