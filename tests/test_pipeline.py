"""Unit tests for the high-level pipeline API."""

import pytest

from repro import (
    ConversionOptions,
    ConversionResult,
    MscError,
    convert_source,
    simulate_mimd,
    simulate_simd,
)
from repro.errors import (
    ConversionError,
    LexError,
    ParseError,
    SemanticError,
)

from tests.helpers import LISTING1_RUNNABLE


class TestConvertSource:
    def test_returns_result_bundle(self):
        r = convert_source(LISTING1_RUNNABLE)
        assert isinstance(r, ConversionResult)
        assert r.source == LISTING1_RUNNABLE
        assert r.cfg.blocks
        assert r.graph.states

    def test_program_prebuilt_and_stable(self):
        # The stage pipeline builds the program (and its plan) eagerly;
        # repeated accessors return the same artifact.
        r = convert_source(LISTING1_RUNNABLE)
        assert r._program is not None
        p1 = r.simd_program()
        p2 = r.simd_program()
        assert p1 is p2

    def test_options_default_is_fresh(self):
        r = convert_source(LISTING1_RUNNABLE)
        assert r.options == ConversionOptions()

    def test_report_attached(self):
        r = convert_source(LISTING1_RUNNABLE)
        assert r.report is not None
        assert r.report.stage_names() == [
            "parse", "sema", "lower", "opt-cfg", "convert", "opt-meta",
            "encode", "plan", "kernels", "native"
        ]

    def test_options_threaded_through(self):
        r = convert_source(LISTING1_RUNNABLE, ConversionOptions(compress=True))
        assert r.graph.compressed
        assert r.simd_program().compressed

    def test_custom_cost_model(self):
        from repro.ir.instr import CostModel

        costs = CostModel(globalor_cost=1, dispatch_cost=1)
        r = convert_source(LISTING1_RUNNABLE, ConversionOptions(costs=costs))
        assert r.simd_program().costs.globalor_cost == 1

    def test_mpl_text_nonempty(self):
        assert "ms_" in convert_source(LISTING1_RUNNABLE).mpl_text()


class TestErrorSurface:
    def test_lex_error(self):
        with pytest.raises(LexError):
            convert_source("main() { $ }")

    def test_parse_error(self):
        with pytest.raises(ParseError):
            convert_source("main() { if }")

    def test_semantic_error(self):
        with pytest.raises(SemanticError):
            convert_source("main() { x = 1; }")

    def test_conversion_error(self):
        src = """
main() {
    poly int a; poly int b; poly int c; poly int d;
    a = procnum % 2; b = procnum % 3; c = procnum % 5; d = procnum % 7;
    if (a) { do { a = a - 1; } while (a); } else { do { a = a + 1; } while (a - 2); }
    if (b) { do { b = b - 1; } while (b); } else { do { b = b + 1; } while (b - 2); }
    if (c) { do { c = c - 1; } while (c); } else { do { c = c + 1; } while (c - 2); }
    if (d) { do { d = d - 1; } while (d); } else { do { d = d + 1; } while (d - 2); }
    return (a + b + c + d);
}
"""
        with pytest.raises(ConversionError):
            convert_source(src, ConversionOptions(max_meta_states=16))

    def test_all_errors_are_msc_errors(self):
        for bad in ("main() { $ }", "main() { if }", "main() { x = 1; }"):
            with pytest.raises(MscError):
                convert_source(bad)


class TestSimulateHelpers:
    def test_simulate_simd_defaults(self):
        r = convert_source(LISTING1_RUNNABLE)
        res = simulate_simd(r, npes=4)
        assert res.npes == 4

    def test_simulate_mimd_defaults(self):
        r = convert_source(LISTING1_RUNNABLE)
        res = simulate_mimd(r, nprocs=4)
        assert res.nprocs == 4

    def test_max_steps_forwarded(self):
        from repro.errors import MachineError

        r = convert_source(
            "main() { poly int x; do { x = 1; } while (x); return (x); }"
        )
        with pytest.raises(MachineError):
            simulate_simd(r, npes=2, max_steps=10)
        with pytest.raises(MachineError):
            simulate_mimd(r, nprocs=2, max_steps=10)

    def test_active_forwarded(self):
        r = convert_source(LISTING1_RUNNABLE)
        import numpy as np

        res = simulate_simd(r, npes=8, active=3)
        assert np.isnan(res.returns[3:]).all()


class TestPublicApi:
    def test_dunder_all_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__
