"""The absint package: fixpoint domains, fact extraction, certificates,
and the ``uniform-branch`` ``-O2`` meta pass.

The headline test is differential: the whole-program slot ranges the
interval fixpoint publishes must contain every value the reference MIMD
machine ever leaves in memory, for any machine width and active count —
abstract-interpretation soundness, sampled with hypothesis.  The
tightening tests pin the acceptance numbers: the uniform-branch facts
cut the eager explosion estimate strictly on real library workloads,
and the ``-O2`` pass that consumes the same facts prunes meta states
without disturbing the SIMD/MIMD equivalence oracle.
"""

from __future__ import annotations

import math
from functools import lru_cache
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConversionOptions,
    convert_source,
    simulate_mimd,
    simulate_simd,
)
from repro.__main__ import main
from repro.absint import compute_facts
from repro.absint.domains import ZERO, Interval
from repro.analysis.stagetime import aggregate_reports
from repro.errors import MachineError
from repro.lint.api import lint_source
from repro.mimd.machine import MimdMachine
from repro.stages import driver as stage_driver
from repro.workloads import all_sources

CORPUS = Path(__file__).parent / "lint_corpus"

WORKLOADS = sorted(all_sources())


def cfg_of(source: str, options: ConversionOptions | None = None):
    """Front half of the pipeline only — no meta conversion."""
    ctx = stage_driver.CompileContext(
        source=source, options=options or ConversionOptions())
    stage_driver._stage_parse(ctx)
    stage_driver._stage_sema(ctx)
    stage_driver._stage_lower(ctx)
    stage_driver._stage_opt_cfg(ctx)
    return ctx.cfg


@lru_cache(maxsize=None)
def workload_facts(name: str):
    """(cfg, facts) for a library workload; facts are width-independent,
    so one fixpoint serves every sampled machine size."""
    cfg = cfg_of(all_sources()[name])
    return cfg, compute_facts(cfg)


# ----------------------------------------------------------------------
# interval algebra and unit facts
# ----------------------------------------------------------------------
class TestIntervals:
    def test_algebra(self):
        a = Interval(3.0, 9.0, integral=True)
        assert a.join(ZERO) == Interval(0.0, 9.0, integral=True)
        assert a.contains(3.0) and a.contains(9.0)
        assert not a.contains(2.0) and not a.contains(float("nan"))
        bottom = Interval(1.0, 0.0)
        assert bottom.is_bottom and bottom.join(a) == a

    def test_procnum_mod_range(self):
        # `procnum % 7 + 3` concretizes to {3..9}; the published range
        # joins in the [0, 0] zero fill idle PEs keep.
        cfg = cfg_of("""
            main() {
                poly int x;
                x = procnum % 7 + 3;
                return (x);
            }
        """)
        facts = compute_facts(cfg)
        (slot,) = [s.index for s in cfg.poly_slots if s.name == "main.x"]
        assert facts.poly_ranges[slot] == Interval(0.0, 9.0, integral=True)
        assert facts.divergent_branches == frozenset()

    def test_widening_terminates_on_unbounded_counter(self):
        # The loop counter has no static bound: widening must push the
        # high end to +inf in finitely many transfer applications
        # instead of chasing the ascending chain forever.
        cfg = cfg_of((CORPUS / "divergent_loop_barrier.mimdc").read_text())
        facts = compute_facts(cfg)
        (slot,) = [s.index for s in cfg.poly_slots if s.name == "main.i"]
        ival = facts.poly_ranges[slot]
        assert ival.lo == 0.0 and math.isinf(ival.hi)
        assert 0 < facts.solver_iterations < 10 * len(cfg.blocks) + 100


# ----------------------------------------------------------------------
# differential soundness vs the MIMD oracle
# ----------------------------------------------------------------------
class TestRangeSoundness:
    @given(name=st.sampled_from(WORKLOADS),
           nprocs=st.integers(min_value=2, max_value=9),
           data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_mimd_never_escapes_published_ranges(self, name, nprocs, data):
        cfg, facts = workload_facts(name)
        active = data.draw(st.integers(min_value=1, max_value=nprocs),
                           label="active")
        try:
            mimd = MimdMachine(nprocs=nprocs).run(
                cfg, active=active, max_steps=200_000)
        except MachineError:
            # e.g. a spawn workload with no idle PE left; the sampled
            # configuration is simply not runnable.
            return
        for slot in range(mimd.poly.shape[0]):
            ival = facts.poly_ranges[slot]
            values = mimd.poly[slot]
            assert np.all(values >= ival.lo) and np.all(values <= ival.hi), (
                name, slot, ival, values)
        for slot in range(mimd.mono.shape[0]):
            ival = facts.mono_ranges.get(slot, ZERO)
            assert ival.contains(float(mimd.mono[slot])), (name, slot, ival)

    def test_no_msc06x_false_positives_on_library(self):
        # Every library workload is known-good: the MSC060/061/062 fact
        # extractors must stay silent on all of them.
        for name in WORKLOADS:
            _, facts = workload_facts(name)
            assert facts.uninit_reads == (), name
            assert facts.dead_router_stores == (), name
            assert facts.divergent_cycle_barriers == (), name


# ----------------------------------------------------------------------
# the explosion estimator tightening
# ----------------------------------------------------------------------
class TestUniformTightening:
    @pytest.mark.parametrize("name,raw,tight", [
        ("odd_even_sort", 729, 324),
        ("tree_reduction", 81, 36),
    ])
    def test_strictly_tighter_on_real_workloads(self, name, raw, tight):
        from repro.lint.explosion import estimate_states

        cfg, facts = workload_facts(name)
        assert estimate_states(cfg, False)[0] == raw
        assert estimate_states(
            cfg, False, uniform_branches=facts.uniform_branches)[0] == tight
        assert tight < raw

    def test_uniform_branches_partition_cond_blocks(self):
        from repro.ir.block import CondBr

        for name in WORKLOADS:
            cfg, facts = workload_facts(name)
            conds = {b for b in facts.uniform_branches
                     | facts.divergent_branches}
            assert facts.uniform_branches.isdisjoint(
                facts.divergent_branches), name
            for b in conds:
                assert isinstance(cfg.blocks[b].terminator, CondBr), name


# ----------------------------------------------------------------------
# certificates
# ----------------------------------------------------------------------
class TestCertificates:
    def test_lockstep_route_on_uniform_program(self):
        cfg = cfg_of((CORPUS / "uniform_chain.mimdc").read_text())
        facts = compute_facts(cfg)
        assert facts.certificates.race_free is not None
        assert facts.certificates.race_free.startswith("lockstep")
        assert facts.certificates.deadlock_free is not None

    def test_truncated_frontier_gets_certified(self):
        # The explosion-bound random walks: lazy conversion runs, the
        # frontier truncates at its budget (MSC050), and the absint
        # certificates stand in for the enumeration it could not finish
        # — with no spurious race/deadlock findings anywhere.
        src = (CORPUS / "explosion_random_walks.mimdc").read_text()
        result = lint_source(src, ConversionOptions(lazy=True))
        codes = {d.code for d in result.diagnostics}
        assert {"MSC050", "MSC064", "MSC065"} <= codes
        assert not any(c.startswith("MSC01") or c.startswith("MSC02")
                       for c in codes)

    def test_complete_frontier_needs_no_certificate(self):
        # Small lazy program: exploration finishes, so MSC064/MSC065
        # would be noise and must not be emitted.
        src = (CORPUS / "uniform_chain.mimdc").read_text()
        result = lint_source(src, ConversionOptions(lazy=True))
        codes = {d.code for d in result.diagnostics}
        assert "MSC050" not in codes
        assert "MSC064" not in codes and "MSC065" not in codes


# ----------------------------------------------------------------------
# the -O2 uniform-branch meta pass
# ----------------------------------------------------------------------
UNIFORM_REGION_SRC = """
main() {
    poly int x; poly int u;
    u = nproc % 3;
    x = procnum;
    if (u > 0) { x = x + 1; } else { x = x + 2; }
    wait;
    if (x % 2) { x = x * 2; }
    return (x);
}
"""


def _uniform_pass_counters(result):
    for rec in result.report.records:
        if rec.name == "opt-meta":
            for sub in rec.subrecords:
                if sub.name == "uniform-branch":
                    return sub.counters
    return None


class TestUniformBranchPass:
    def test_prunes_and_stays_bit_identical(self):
        returns = {}
        for level in (1, 2):
            opts = ConversionOptions(opt_level=level, verify_passes=True)
            result = convert_source(UNIFORM_REGION_SRC, opts, cache=None)
            simd = simulate_simd(result, npes=6)
            mimd = simulate_mimd(result, nprocs=6)
            assert np.array_equal(simd.returns, mimd.returns,
                                  equal_nan=True), level
            assert np.array_equal(simd.poly, mimd.poly), level
            assert np.array_equal(simd.mono, mimd.mono), level
            returns[level] = (simd.returns, len(result.graph.states))
        counters = _uniform_pass_counters(
            convert_source(UNIFORM_REGION_SRC,
                           ConversionOptions(opt_level=2), cache=None))
        assert counters is not None and counters["uniform_pruned"] >= 1
        # The pass only removes states; the observable results match.
        assert np.array_equal(returns[1][0], returns[2][0], equal_nan=True)
        assert returns[2][1] < returns[1][1]

    def test_noop_on_divergent_regions(self):
        # Divergence in the only barrier-free region makes every branch
        # ineligible: the pass must report zero prunes, not guess.
        result = convert_source(all_sources()["divergent_loops"],
                                ConversionOptions(opt_level=2), cache=None)
        counters = _uniform_pass_counters(result)
        assert counters is not None and counters["uniform_pruned"] == 0


# ----------------------------------------------------------------------
# surfacing: --facts, per-analyzer substage aggregation
# ----------------------------------------------------------------------
class TestSurfacing:
    def test_lint_facts_flag_prints_counter_rows(self, tmp_path, capsys):
        path = tmp_path / "prog.mimdc"
        path.write_text((CORPUS / "uniform_chain.mimdc").read_text())
        assert main(["lint", str(path), "--facts"]) == 0
        out = capsys.readouterr().out
        assert "absint" in out
        assert "uniform_branches=" in out and "solver_iterations=" in out
        assert "certify" in out and "race_free=" in out

    def test_aggregate_reports_splits_out_analyzers(self):
        result = convert_source(all_sources()["tree_reduction"],
                                ConversionOptions(analyze=True), cache=None)
        agg = aggregate_reports([result.report])
        assert "analyze/absint" in agg["substages"]
        assert "analyze-meta/certify" in agg["substages"]
        row = agg["substages"]["analyze/absint"]
        assert row["runs"] == 1 and row["seconds"] >= 0.0
        # Substage time is part of the parent stage: keep it out of the
        # top-level rows the CI warm-pass gate sums.
        assert not any("/" in k for k in agg["stages"])
