"""Unit tests for the analysis package (stats, memory, utilization,
comparison)."""

import math

import pytest

from repro import ConversionOptions, convert_source
from repro.analysis.compare import compare_msc_vs_interpreter, format_table
from repro.analysis.memory import MASPAR_PE_BYTES, memory_comparison
from repro.analysis.stats import (
    graph_stats,
    subset_state_bound,
    successor_bound,
    theoretical_state_bound,
)
from repro.analysis.utilization import (
    meta_state_imbalance,
    static_meta_utilization,
)
from repro.mimd.flatten import flatten_cfg

from tests.helpers import LISTING1_RUNNABLE, LISTING1_SHAPE


@pytest.fixture(autouse=True)
def _paper_opt_level(monkeypatch):
    """The stats tests assert shapes the paper's pipeline produces,
    which assume its normalization level (-O1) — pin it so an external
    REPRO_OPT_LEVEL (the CI -O0 matrix leg) cannot change them."""
    monkeypatch.setenv("REPRO_OPT_LEVEL", "1")


class TestBounds:
    def test_paper_factorial_bound(self):
        # S!/(S-N)!
        assert theoretical_state_bound(5, 2) == 20
        assert theoretical_state_bound(4, 4) == math.factorial(4)

    def test_more_procs_than_states_saturates(self):
        assert theoretical_state_bound(3, 10) == math.factorial(3)

    def test_subset_bound(self):
        assert subset_state_bound(4) == 15

    def test_successor_bound(self):
        assert successor_bound(0) == 1
        assert successor_bound(2) == 9
        assert successor_bound(4) == 81


class TestGraphStats:
    def test_listing1_stats(self):
        r = convert_source(LISTING1_SHAPE)
        s = graph_stats(r.cfg, r.graph)
        assert s.num_mimd_states == 4
        assert s.num_branch_states == 3
        assert s.num_meta_states == 8
        assert s.max_width == 3
        assert s.num_meta_states <= s.subset_bound

    def test_max_out_degree_within_bound(self):
        r = convert_source(LISTING1_SHAPE)
        s = graph_stats(r.cfg, r.graph)
        assert s.max_out_degree <= s.successor_bound_worst

    def test_compressed_stats_smaller(self):
        base = convert_source(LISTING1_SHAPE)
        comp = convert_source(LISTING1_SHAPE, ConversionOptions(compress=True))
        sb = graph_stats(base.cfg, base.graph)
        sc = graph_stats(comp.cfg, comp.graph)
        assert sc.num_meta_states < sb.num_meta_states
        assert sc.mean_width > sb.mean_width

    def test_as_row(self):
        r = convert_source(LISTING1_SHAPE)
        row = graph_stats(r.cfg, r.graph).as_row()
        assert row["meta states"] == 8


class TestMemoryModel:
    def test_msc_has_zero_pe_program_bytes(self):
        r = convert_source(LISTING1_RUNNABLE)
        interp, msc = memory_comparison(flatten_cfg(r.cfg), r.simd_program())
        assert msc.program_bytes_per_pe == 0
        assert interp.program_bytes_per_pe > 0
        assert msc.control_unit_bytes > 0

    def test_pe_total_and_fit(self):
        r = convert_source(LISTING1_RUNNABLE)
        interp, msc = memory_comparison(flatten_cfg(r.cfg), r.simd_program())
        assert interp.pe_total > msc.pe_total
        assert msc.fits_maspar_pe()
        assert msc.pe_total < MASPAR_PE_BYTES


class TestUtilization:
    def test_imbalance_range(self):
        r = convert_source(LISTING1_RUNNABLE)
        for m in r.graph.states:
            assert 0 < meta_state_imbalance(r.cfg, m) <= 1.0

    def test_static_utilization_range(self):
        r = convert_source(LISTING1_RUNNABLE)
        u = static_meta_utilization(r.cfg, r.graph)
        assert 0 < u <= 1.0

    def test_balanced_graph_is_full_utilization(self):
        r = convert_source("main() { poly int x; x = procnum; return (x); }")
        assert static_meta_utilization(r.cfg, r.graph) == 1.0


class TestComparison:
    def test_comparison_row(self):
        r = convert_source(LISTING1_RUNNABLE)
        row = compare_msc_vs_interpreter("listing1", r, npes=8)
        assert row.outputs_match
        assert row.speedup > 1.0          # interpretation is slower
        assert row.interp_overhead > 0
        assert row.msc_program_bytes_per_pe == 0
        assert row.interp_program_bytes_per_pe > 0

    def test_msc_overhead_below_interp_overhead(self):
        r = convert_source(LISTING1_RUNNABLE)
        row = compare_msc_vs_interpreter("listing1", r, npes=8)
        assert row.msc_overhead < row.interp_overhead

    def test_table_formatting(self):
        r = convert_source(LISTING1_RUNNABLE)
        row = compare_msc_vs_interpreter("listing1", r, npes=8)
        text = format_table([row])
        assert "listing1" in text
        assert "speedup" in text

    def test_empty_table(self):
        assert "(no rows)" in format_table([])
