"""Unit tests for semantic analysis (mono/poly typing, calls, labels)."""

import pytest

from repro.errors import SemanticError
from repro.lang.parser import parse
from repro.lang.sema import analyze


def sema(src: str):
    return analyze(parse(src))


class TestStorageInference:
    def get_assign(self, src):
        prog = parse(src)
        analyze(prog)
        main = prog.function("main")
        for s in main.body.body:
            if hasattr(s, "expr"):
                return s.expr
        raise AssertionError("no expression statement found")

    def test_literal_is_mono(self):
        e = self.get_assign("main() { poly int x; x = 1; }")
        assert e.value.storage == "mono"

    def test_procnum_is_poly(self):
        e = self.get_assign("main() { poly int x; x = procnum; }")
        assert e.value.storage == "poly"

    def test_nproc_is_mono(self):
        e = self.get_assign("main() { poly int x; x = nproc; }")
        assert e.value.storage == "mono"

    def test_poly_propagates_through_binary(self):
        e = self.get_assign("main() { poly int x; x = 1 + procnum * 2; }")
        assert e.value.storage == "poly"

    def test_mono_op_mono_is_mono(self):
        e = self.get_assign("mono int a; main() { poly int x; x = a + 1; }")
        assert e.value.storage == "mono"

    def test_comparison_yields_int(self):
        e = self.get_assign("main() { poly int x; x = 1.5 < 2.5; }")
        assert e.value.ctype == "int"

    def test_float_propagates(self):
        e = self.get_assign("main() { poly float x; x = 1 + 2.0; }")
        assert e.value.ctype == "float"

    def test_parallel_ref_is_poly(self):
        e = self.get_assign("main() { poly int x; poly int y; x = y[[0]]; }")
        assert e.value.storage == "poly"


class TestMonoPolyRules:
    def test_poly_to_mono_assignment_rejected(self):
        with pytest.raises(SemanticError, match="mono"):
            sema("mono int a; main() { a = procnum; }")

    def test_poly_init_of_mono_rejected(self):
        with pytest.raises(SemanticError, match="mono"):
            sema("main() { mono int a = procnum; }")

    def test_mono_to_poly_is_fine(self):
        sema("mono int a; main() { poly int x; x = a; }")

    def test_parallel_subscript_of_mono_rejected(self):
        with pytest.raises(SemanticError, match="poly"):
            sema("mono int a; main() { poly int x; x = a[[0]]; }")

    def test_poly_condition_allowed(self):
        sema("main() { if (procnum) { ; } }")


class TestNamesAndScopes:
    def test_undeclared_variable(self):
        with pytest.raises(SemanticError, match="undeclared"):
            sema("main() { x = 1; }")

    def test_redeclared_local(self):
        with pytest.raises(SemanticError, match="redeclared"):
            sema("main() { poly int x; poly int x; }")

    def test_shadowing_in_inner_block_allowed(self):
        sema("main() { poly int x; { poly int x; x = 1; } }")

    def test_global_shadowed_by_local(self):
        info = sema("mono int x; main() { poly int x; x = procnum; }")
        assert len(info.functions["main"].locals) == 1

    def test_redeclared_global(self):
        with pytest.raises(SemanticError, match="redeclared"):
            sema("mono int a; mono int a; main() { ; }")

    def test_global_init_must_be_literal(self):
        with pytest.raises(SemanticError, match="literal"):
            sema("mono int a = 1 + 2; main() { ; }")

    def test_param_visible_in_body(self):
        sema("int f(int n) { return (n + 1); } main() { poly int v; v = f(1); }")


class TestCalls:
    def test_undefined_function(self):
        with pytest.raises(SemanticError, match="undefined"):
            sema("main() { f(); }")

    def test_arity_mismatch(self):
        with pytest.raises(SemanticError, match="argument"):
            sema("int f(int a) { return (a); } main() { poly int v; v = f(); }")

    def test_call_in_expression_rejected(self):
        with pytest.raises(SemanticError, match="calls may only appear"):
            sema("int f() { return (1); } main() { poly int v; v = f() + 1; }")

    def test_call_as_statement_ok(self):
        sema("void f() { return; } main() { f(); }")

    def test_call_as_plain_rhs_ok(self):
        sema("int f() { return (1); } main() { poly int v; v = f(); }")

    def test_call_in_compound_assignment_rejected(self):
        with pytest.raises(SemanticError, match="calls may only appear"):
            sema("int f() { return (1); } main() { poly int v; v += f(); }")

    def test_redefined_function(self):
        with pytest.raises(SemanticError, match="redefined"):
            sema("int f() { return (1); } int f() { return (2); } main() { ; }")

    def test_main_with_params_rejected(self):
        with pytest.raises(SemanticError, match="main"):
            sema("main(int a) { return (a); }")

    def test_void_return_with_value_rejected(self):
        with pytest.raises(SemanticError, match="void"):
            sema("void f() { return (1); } main() { f(); }")

    def test_nonvoid_return_without_value_rejected(self):
        with pytest.raises(SemanticError, match="no value"):
            sema("int f() { return; } main() { f(); }")


class TestCallGraph:
    def test_recursive_function_detected(self):
        info = sema("int g(int n) { poly int r; if (n) { r = g(n-1); } "
                    "return (r); } main() { poly int v; v = g(2); }")
        assert "g" in info.recursive_functions()
        assert "main" not in info.recursive_functions()

    def test_mutual_recursion_detected(self):
        info = sema(
            "int a(int n); "
            "int b(int n) { poly int r; r = a(n); return (r); } "
            "int a(int n) { poly int r; r = b(n); return (r); } "
            "main() { poly int v; v = a(1); }"
        )
        assert {"a", "b"} <= info.recursive_functions()

    def test_non_recursive_chain(self):
        info = sema(
            "int c() { return (1); } "
            "int b() { poly int r; r = c(); return (r); } "
            "main() { poly int v; v = b(); }"
        )
        assert info.recursive_functions() == set()


class TestLabelsAndControl:
    def test_spawn_unknown_label(self):
        with pytest.raises(SemanticError, match="label"):
            sema("main() { spawn(nowhere); }")

    def test_spawn_known_label(self):
        sema("main() { spawn(w); return (0); w: halt; }")

    def test_duplicate_label(self):
        with pytest.raises(SemanticError, match="duplicate"):
            sema("main() { a: ; a: ; }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="break"):
            sema("main() { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError, match="continue"):
            sema("main() { continue; }")

    def test_break_in_loop_ok(self):
        sema("main() { while (1) { break; } }")


class TestTypeRules:
    def test_mod_on_float_rejected(self):
        with pytest.raises(SemanticError, match="int"):
            sema("main() { poly float f; f = 1.5 % 2.0; }")

    def test_shift_on_float_rejected(self):
        with pytest.raises(SemanticError, match="int"):
            sema("main() { poly int x; x = 1.5 << 2; }")

    def test_bitand_on_float_rejected(self):
        with pytest.raises(SemanticError, match="int"):
            sema("main() { poly int x; x = 1.0 & 3; }")
