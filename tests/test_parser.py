"""Unit tests for the MIMDC parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse


def main_body(src: str) -> list:
    return parse(src).function("main").body.body


class TestTopLevel:
    def test_minimal_main(self):
        prog = parse("main() { return (0); }")
        assert prog.function("main") is not None

    def test_missing_main_raises(self):
        with pytest.raises(ParseError, match="main"):
            parse("int f() { return (0); }")

    def test_globals(self):
        prog = parse("mono int a = 1; poly float b;\nmain() { return (0); }")
        assert [g.name for g in prog.globals] == ["a", "b"]
        assert prog.globals[0].storage == "mono"
        assert prog.globals[1].ctype == "float"

    def test_global_comma_list(self):
        prog = parse("poly int a, b = 2, c;\nmain() { return (0); }")
        assert [g.name for g in prog.globals] == ["a", "b", "c"]
        assert prog.globals[1].init.value == 2

    def test_function_with_params(self):
        prog = parse("int f(int a, mono float b) { return (a); }"
                     "main() { return (0); }")
        f = prog.function("f")
        assert [p.name for p in f.params] == ["a", "b"]
        assert f.params[1].storage == "mono"
        assert f.params[1].ctype == "float"

    def test_void_function(self):
        prog = parse("void f() { return; } main() { f(); return (0); }")
        assert prog.function("f").ret_ctype is None

    def test_prototype_is_discarded(self):
        prog = parse("int f(int n);\nint f(int n) { return (n); }\n"
                     "main() { return (0); }")
        assert len([g for g in prog.functions if g.name == "f"]) == 1

    def test_default_return_type_is_poly_int(self):
        f = parse("main() { return (0); }").function("main")
        assert f.ret_storage == "poly"
        assert f.ret_ctype == "int"

    def test_redefined_function_allowed_by_parser(self):
        # The parser accepts it; sema rejects it.
        prog = parse("int f() { return (1); } int f() { return (2); }"
                     "main() { return (0); }")
        assert len(prog.functions) == 3


class TestStatements:
    def test_if_else(self):
        (s,) = main_body("main() { if (1) { ; } else { ; } }")
        assert isinstance(s, ast.If)
        assert s.otherwise is not None

    def test_dangling_else_binds_inner(self):
        (s,) = main_body("main() { if (1) if (2) ; else ; }")
        assert s.otherwise is None
        assert s.then.otherwise is not None

    def test_while(self):
        (s,) = main_body("main() { while (x) { ; } }")
        assert isinstance(s, ast.While)

    def test_do_while(self):
        (s,) = main_body("main() { do { ; } while (x); }")
        assert isinstance(s, ast.DoWhile)

    def test_for_full(self):
        (s,) = main_body("main() { for (i = 0; i < 3; i += 1) ; }")
        assert isinstance(s, ast.For)
        assert s.init is not None and s.cond is not None and s.update is not None

    def test_for_empty_clauses(self):
        (s,) = main_body("main() { for (;;) break; }")
        assert s.init is None and s.cond is None and s.update is None

    def test_wait_spawn_halt(self):
        body = main_body("main() { wait; spawn(w); halt; w: ; }")
        assert isinstance(body[0], ast.WaitStmt)
        assert isinstance(body[1], ast.SpawnStmt)
        assert body[1].target == "w"
        assert isinstance(body[2], ast.HaltStmt)
        assert isinstance(body[3], ast.LabeledStmt)

    def test_return_value_optional(self):
        body = main_body("main() { return; }")
        assert body[0].value is None

    def test_local_declarations(self):
        body = main_body("main() { poly int x = 1; float y; }")
        assert body[0].name == "x"
        assert body[0].init.value == 1
        assert body[1].ctype == "float"
        assert body[1].storage == "poly"  # default

    def test_label_vs_ternary_disambiguation(self):
        body = main_body("main() { x = a ? b : c; lab: ; }")
        assert isinstance(body[0], ast.ExprStmt)
        assert isinstance(body[0].expr.value, ast.Ternary)
        assert isinstance(body[1], ast.LabeledStmt)


class TestExpressions:
    def expr(self, text: str) -> ast.Expr:
        (s,) = main_body(f"main() {{ {text}; }}")
        return s.expr

    def test_precedence_mul_over_add(self):
        e = self.expr("x = a + b * c")
        assert e.value.op == "+"
        assert e.value.right.op == "*"

    def test_precedence_comparison_over_logic(self):
        e = self.expr("x = a < b && c > d")
        assert e.value.op == "&&"

    def test_left_associativity(self):
        e = self.expr("x = a - b - c")
        assert e.value.op == "-"
        assert e.value.left.op == "-"

    def test_unary_chain(self):
        e = self.expr("x = !-~a")
        assert e.value.op == "!"
        assert e.value.operand.op == "-"
        assert e.value.operand.operand.op == "~"

    def test_unary_plus_is_identity(self):
        e = self.expr("x = +a")
        assert isinstance(e.value, ast.Name)

    def test_parenthesized(self):
        e = self.expr("x = (a + b) * c")
        assert e.value.op == "*"
        assert e.value.left.op == "+"

    def test_call_with_args(self):
        e = self.expr("f(1, a + 2)")
        assert isinstance(e, ast.Call)
        assert len(e.args) == 2

    def test_parallel_ref(self):
        e = self.expr("x = y[[i + 1]]")
        assert isinstance(e.value, ast.ParallelRef)
        assert e.value.name == "y"
        assert e.value.index.op == "+"

    def test_parallel_ref_as_target(self):
        e = self.expr("y[[i]] = 4")
        assert isinstance(e.target, ast.ParallelRef)

    def test_compound_assignment(self):
        e = self.expr("x += 2")
        assert e.op == "+="

    def test_assignment_right_associative(self):
        e = self.expr("x = y = 1")
        assert isinstance(e.value, ast.Assign)

    def test_procnum_nproc(self):
        e = self.expr("x = procnum % nproc")
        assert isinstance(e.value.left, ast.ProcNum)
        assert isinstance(e.value.right, ast.NProc)

    def test_bitwise_precedence(self):
        e = self.expr("x = a | b ^ c & d")
        assert e.value.op == "|"
        assert e.value.right.op == "^"
        assert e.value.right.right.op == "&"

    def test_shift(self):
        e = self.expr("x = a << 2 >> 1")
        assert e.value.op == ">>"

    def test_nested_ternary(self):
        e = self.expr("x = a ? b : c ? d : e")
        assert isinstance(e.value.if_false, ast.Ternary)


class TestParseErrors:
    @pytest.mark.parametrize("src", [
        "main() { if (1) }",
        "main() { x = ; }",
        "main() { do ; while 1; }",
        "main() { spawn(); }",
        "main() { 1 = x; }",
        "main() { x = y[[1]; }",
        "main() {",
        "main() { wait }",
    ])
    def test_malformed_raises(self, src):
        with pytest.raises(ParseError):
            parse(src)

    def test_error_position(self):
        with pytest.raises(ParseError) as e:
            parse("main() {\n  x = ;\n}")
        assert e.value.line == 2

    def test_assignment_target_must_be_lvalue(self):
        with pytest.raises(ParseError, match="target"):
            parse("main() { (a + b) = 1; }")
