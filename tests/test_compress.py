"""Unit tests for meta-state compression (section 2.5, Figure 5)."""

import numpy as np
import pytest

from repro import ConversionOptions, convert_source, simulate_mimd, simulate_simd
from repro.core.convert import ConvertOptions, convert
from repro.ir.lowering import lower_program
from repro.lang.parser import parse
from repro.lang.sema import analyze

from tests.helpers import (
    CORPUS,
    LISTING1_RUNNABLE,
    LISTING1_SHAPE,
    assert_equivalent,
)


def lower(src: str):
    return lower_program(analyze(parse(src)))


class TestFigure5:
    """Figure 5: the compressed graph of Listing 1 has two meta states
    (after the meta-graph straightening of section 4.2 step 4)."""

    def test_three_raw_states(self):
        graph = convert(lower(LISTING1_SHAPE), ConvertOptions(compress=True))
        assert graph.num_states() == 3

    def test_two_straightened_states(self):
        graph = convert(lower(LISTING1_SHAPE), ConvertOptions(compress=True))
        assert graph.num_straightened_states() == 2

    def test_compressed_vs_base_eight(self):
        cfg = lower(LISTING1_SHAPE)
        base = convert(cfg)
        comp = convert(cfg, ConvertOptions(compress=True))
        assert base.num_states() == 8
        assert comp.num_states() < base.num_states()

    def test_transitions_are_unconditional(self):
        graph = convert(lower(LISTING1_SHAPE), ConvertOptions(compress=True))
        for m in graph.states:
            assert len(graph.successors(m)) <= 1

    def test_compressed_flag_set(self):
        graph = convert(lower(LISTING1_SHAPE), ConvertOptions(compress=True))
        assert graph.compressed

    def test_wide_state_contains_all_live_blocks(self):
        cfg = lower(LISTING1_SHAPE)
        graph = convert(cfg, ConvertOptions(compress=True))
        widest = max(graph.states, key=len)
        # Everything except the entry block lives in the big state.
        assert widest == frozenset(set(cfg.blocks) - {cfg.entry})


class TestCompressionProperties:
    @pytest.mark.parametrize("name,src", CORPUS)
    def test_never_more_states_than_base(self, name, src):
        cfg = lower(src)
        base = convert(cfg)
        comp = convert(cfg, ConvertOptions(compress=True))
        assert comp.num_states() <= base.num_states(), name

    @pytest.mark.parametrize("name,src", CORPUS)
    def test_states_linear_in_blocks(self, name, src):
        # Compression makes growth linear: each meta state is produced
        # by at most one union per state, so the count is bounded by a
        # small multiple of the MIMD state count.
        cfg = lower(src)
        comp = convert(cfg, ConvertOptions(compress=True))
        assert comp.num_states() <= 2 * len(cfg.blocks) + 2, name

    def test_compressed_states_are_wider_on_average(self):
        cfg = lower(LISTING1_SHAPE)
        base = convert(cfg)
        comp = convert(cfg, ConvertOptions(compress=True))
        mean_base = sum(len(m) for m in base.states) / base.num_states()
        mean_comp = sum(len(m) for m in comp.states) / comp.num_states()
        assert mean_comp > mean_base

    def test_exit_detection_marked(self):
        # Compression loses the populated invariant: any state holding
        # a terminal member must be exit-checked.
        cfg = lower(LISTING1_SHAPE)
        comp = convert(cfg, ConvertOptions(compress=True))
        widest = max(comp.states, key=len)
        assert widest in comp.can_exit


class TestCompressedExecution:
    def test_execution_matches_oracle(self):
        r = convert_source(LISTING1_RUNNABLE, ConversionOptions(compress=True))
        simd = simulate_simd(r, npes=16)
        mimd = simulate_mimd(r, nprocs=16)
        assert_equivalent(simd, mimd)

    def test_compressed_visits_fewer_distinct_nodes(self):
        base = convert_source(LISTING1_RUNNABLE)
        comp = convert_source(LISTING1_RUNNABLE, ConversionOptions(compress=True))
        sb = simulate_simd(base, npes=16)
        sc = simulate_simd(comp, npes=16)
        assert len(sc.node_visits) <= len(sb.node_visits)
        np.testing.assert_array_equal(sb.returns, sc.returns)

    def test_single_pe_still_works(self):
        r = convert_source(LISTING1_RUNNABLE, ConversionOptions(compress=True))
        simd = simulate_simd(r, npes=1)
        mimd = simulate_mimd(r, nprocs=1)
        assert_equivalent(simd, mimd)
